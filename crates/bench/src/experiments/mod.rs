//! Experiment registry: one entry per paper table/figure.

pub mod ablations;
pub mod async_figs;
pub mod chaos;
pub mod convergence_fig;
pub mod fleet;
pub mod perf_figs;
pub mod recovery;
pub mod tables;
pub mod throughput;
pub mod workload_figs;

use laminar_baselines::{OneStepStaleness, PartialRollout, StreamGeneration, VerlSync};
use laminar_cluster::ModelSpec;
use laminar_core::{placement_for, LaminarSystem, SystemKind};
use laminar_runtime::{RecordingTrace, RlSystem, RunReport, SystemConfig, TraceSink};
use laminar_workload::WorkloadGenerator;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Harness options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Shrink batches/iterations for minutes-scale runs (default). `false`
    /// runs the paper-sized configurations.
    pub quick: bool,
    /// Root seed.
    pub seed: u64,
    /// When set, every system run appends its event-trace spans to this
    /// JSONL file (one span object per line).
    pub trace: Option<PathBuf>,
    /// Worker threads for intra-experiment grid fan-out ([`Opts::run_grid`]).
    /// `1` (the default) runs every grid cell inline.
    pub jobs: usize,
    /// Replica-group shards for Laminar runs (`--shards`, default 1): the
    /// conservative-lookahead sharded driver fans replica event loops
    /// across this many worker threads between fences. Output is
    /// byte-identical at every shard count; the request is clamped so
    /// `jobs × shards` never oversubscribes the machine (see
    /// [`crate::runner::effective_shards`]).
    pub shards: usize,
    /// Root seed for the `chaos` experiment's fault-schedule generator.
    /// Seed `k` of the sweep uses `chaos_seed + k`.
    pub chaos_seed: u64,
    /// Root seed for the `recovery` experiment's sustained fault schedules.
    pub recovery_seed: u64,
    /// Cells behind the admission router for the `fleet` experiment's
    /// acceptance scenario (`--fleet-cells`, min 4).
    pub fleet_cells: usize,
    /// Root seed for the `fleet` experiment's fault-schedule generator
    /// (`--fleet-seed`). Seed `k` of the sweep uses `fleet_seed + k`.
    pub fleet_seed: u64,
    /// Checkpoint cadence override (virtual seconds) for the `recovery`
    /// experiment's checkpoint/restore section. `None` exercises the two
    /// built-in cadences.
    pub checkpoint_every: Option<f64>,
    /// When set, trace spans are buffered here instead of written straight
    /// to [`Opts::trace`]; the experiment driver flushes whole-experiment
    /// buffers to the file in deterministic id order after the parallel
    /// fan-out completes. Spans within one experiment stay ordered because
    /// [`Opts::run_grid`] sinks per-run traces in grid input order and
    /// serial code paths sink at call time. Install via
    /// [`Opts::buffer_trace`]; leave `None` to write straight to the file.
    pub trace_buf: Option<Arc<Mutex<String>>>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            quick: true,
            seed: 7,
            trace: None,
            jobs: 1,
            shards: 1,
            chaos_seed: 1,
            recovery_seed: 1,
            fleet_cells: 4,
            fleet_seed: 1,
            checkpoint_every: None,
            trace_buf: None,
        }
    }
}

impl Opts {
    /// Builds the [`SystemConfig`] for a system at a Table 2 scale point,
    /// applying quick-mode shrinking.
    pub fn config(
        &self,
        kind: SystemKind,
        model: ModelSpec,
        total_gpus: usize,
        workload: WorkloadGenerator,
    ) -> SystemConfig {
        let p = placement_for(kind, &model, total_gpus);
        let mut cfg = SystemConfig::new(model, p.train, p.rollout, p.tp, workload);
        cfg.seed = self.seed;
        if self.quick {
            // Keep the paper's batch geometry (it sets per-replica decode
            // batch sizes, which throughput depends on) and trim the
            // iteration count instead.
            cfg.iterations = 2;
            cfg.warmup = 2;
        } else {
            cfg.iterations = 3;
            cfg.warmup = 3;
        }
        cfg
    }

    /// Redirects trace output into an in-memory buffer and returns the
    /// buffer handle. Used by the experiment driver to run experiments in
    /// parallel while keeping the on-disk trace file ordered: each
    /// experiment writes to its own buffer, and the driver flushes buffers
    /// to [`Opts::trace`] in experiment id order.
    pub fn buffer_trace(&mut self) -> Arc<Mutex<String>> {
        let buf = Arc::new(Mutex::new(String::new()));
        self.trace_buf = Some(Arc::clone(&buf));
        buf
    }

    /// Whether runs should record trace spans at all.
    pub(crate) fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Sinks one run's recorded spans: into the in-memory buffer when one is
    /// installed, otherwise appended to the [`Opts::trace`] JSONL file.
    pub(crate) fn sink_trace(&self, rec: &RecordingTrace) {
        match (&self.trace_buf, &self.trace) {
            (Some(buf), _) => rec.write_jsonl_into(&mut buf.lock().expect("trace buffer")),
            (None, Some(path)) => rec.append_jsonl(path).expect("append trace JSONL"),
            (None, None) => {}
        }
    }

    /// The shard count Laminar runs actually use: the `--shards` request
    /// clamped against [`Opts::jobs`] so nested parallelism never
    /// oversubscribes the machine.
    pub fn effective_shards(&self) -> usize {
        crate::runner::effective_shards(self.shards, self.jobs)
    }

    /// Runs a system kind on a configuration. With [`Opts::trace`] set, the
    /// run's event spans are appended to the JSONL trace file (or to the
    /// installed trace buffer).
    pub fn run_system(&self, kind: SystemKind, cfg: &SystemConfig) -> RunReport {
        let shards = self.effective_shards();
        if !self.tracing() {
            return dispatch(kind, cfg, shards, &mut laminar_runtime::NullTrace);
        }
        let mut rec = RecordingTrace::new();
        let report = dispatch(kind, cfg, shards, &mut rec);
        self.sink_trace(&rec);
        report
    }

    /// Runs a batch of independent system runs, fanning them across
    /// [`Opts::jobs`] worker threads, and returns the reports in input
    /// order. Trace spans are recorded per run and sunk sequentially in
    /// input order after all runs finish, so the trace file (or buffer) is
    /// byte-identical to a `jobs = 1` run.
    pub fn run_grid(&self, runs: Vec<(SystemKind, SystemConfig)>) -> Vec<RunReport> {
        let tracing = self.tracing();
        let shards = self.effective_shards();
        let results = crate::runner::run_indexed(runs, self.jobs, |_, (kind, cfg)| {
            if tracing {
                let mut rec = RecordingTrace::new();
                let report = dispatch(kind, &cfg, shards, &mut rec);
                (report, Some(rec))
            } else {
                (
                    dispatch(kind, &cfg, shards, &mut laminar_runtime::NullTrace),
                    None,
                )
            }
        });
        results
            .into_iter()
            .map(|(report, rec)| {
                if let Some(rec) = rec {
                    self.sink_trace(&rec);
                }
                report
            })
            .collect()
    }

    /// The evaluated cluster scales for a model, trimmed in quick mode.
    pub fn scales(&self, model: &ModelSpec) -> Vec<usize> {
        let all = laminar_core::placement::paper_scales(model);
        if self.quick {
            // First, middle, and last scale keep the trend visible.
            vec![all[0], all[2], all[4]]
        } else {
            all
        }
    }
}

/// Runs `kind` on `cfg`, forwarding spans to `trace`. `shards` selects the
/// Laminar driver (1 = serial wake loop, >1 = conservative-lookahead
/// sharded loop — byte-identical output either way); the baselines are
/// serial-only and ignore it.
pub(crate) fn dispatch(
    kind: SystemKind,
    cfg: &SystemConfig,
    shards: usize,
    trace: &mut dyn TraceSink,
) -> RunReport {
    match kind {
        SystemKind::Verl => VerlSync.run_traced(cfg, trace),
        SystemKind::OneStep => OneStepStaleness.run_traced(cfg, trace),
        SystemKind::StreamGen => StreamGeneration.run_traced(cfg, trace),
        SystemKind::PartialRollout => PartialRollout.run_traced(cfg, trace),
        SystemKind::Laminar => LaminarSystem {
            shards,
            ..LaminarSystem::default()
        }
        .run_traced(cfg, trace),
    }
}

/// One registered experiment: id, a one-line title, the spec/CLI knobs it
/// honors beyond the common set (`--seed`, `--full/--quick`, `--jobs`,
/// `--trace`), and its run function.
///
/// This table is the single source of truth: the id list, the dispatch,
/// and the binary's `--list` output all derive from it.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentDef {
    /// Stable experiment id (also the result file stem).
    pub id: &'static str,
    /// One-line description for `--list`.
    pub title: &'static str,
    /// Experiment-specific knobs beyond the common set.
    pub knobs: &'static [&'static str],
    /// Renders the report.
    pub run: fn(&Opts) -> String,
}

/// Every experiment, in paper order.
pub static REGISTRY: &[ExperimentDef] = &[
    ExperimentDef {
        id: "fig1b",
        title: "RL iteration time breakdown under the synchronous system",
        knobs: &[],
        run: throughput::fig1b,
    },
    ExperimentDef {
        id: "fig2",
        title: "workload skew across task distributions",
        knobs: &[],
        run: workload_figs::fig2,
    },
    ExperimentDef {
        id: "fig4",
        title: "one-step decode latency vs decode batch size",
        knobs: &[],
        run: perf_figs::fig4,
    },
    ExperimentDef {
        id: "fig9",
        title: "KVCache utilization lifecycle",
        knobs: &[],
        run: perf_figs::fig9,
    },
    ExperimentDef {
        id: "fig10",
        title: "inherent staleness over trajectory finish-time ranges",
        knobs: &[],
        run: async_figs::fig10,
    },
    ExperimentDef {
        id: "fig11",
        title: "training throughput, single-turn math, all scales",
        knobs: &[],
        run: throughput::fig11,
    },
    ExperimentDef {
        id: "fig12",
        title: "training throughput, multi-turn tool calling",
        knobs: &[],
        run: throughput::fig12,
    },
    ExperimentDef {
        id: "fig13",
        title: "reward vs wall-clock time across staleness regimes",
        knobs: &[],
        run: convergence_fig::fig13,
    },
    ExperimentDef {
        id: "fig14",
        title: "rollout waiting time during weight sync",
        knobs: &[],
        run: perf_figs::fig14,
    },
    ExperimentDef {
        id: "fig15",
        title: "throughput timeline across a rollout-machine failure",
        knobs: &[],
        run: async_figs::fig15,
    },
    ExperimentDef {
        id: "fig16",
        title: "repack efficiency",
        knobs: &[],
        run: async_figs::fig16,
    },
    ExperimentDef {
        id: "fig17",
        title: "response-length distributions per checkpoint",
        knobs: &[],
        run: workload_figs::fig17,
    },
    ExperimentDef {
        id: "fig18",
        title: "chain-pipelined relay broadcast latency",
        knobs: &[],
        run: perf_figs::fig18,
    },
    ExperimentDef {
        id: "table1",
        title: "rollout statistics with and without repack",
        knobs: &[],
        run: async_figs::table1,
    },
    ExperimentDef {
        id: "table2",
        title: "GPU allocation per system and scale",
        knobs: &[],
        run: tables::table2,
    },
    ExperimentDef {
        id: "table3",
        title: "convergence hyperparameters",
        knobs: &[],
        run: tables::table3,
    },
    ExperimentDef {
        id: "ablate-repack",
        title: "ablation: repack on/off across scales",
        knobs: &[],
        run: ablations::ablate_repack,
    },
    ExperimentDef {
        id: "ablate-idleness",
        title: "ablation: idleness metric (KVCache lifecycle vs static threshold)",
        knobs: &[],
        run: ablations::ablate_idleness,
    },
    ExperimentDef {
        id: "ablate-sampling",
        title: "ablation: experience sampling strategy vs consumed staleness",
        knobs: &[],
        run: ablations::ablate_sampling,
    },
    ExperimentDef {
        id: "ablate-chunks",
        title: "ablation: chain broadcast chunk count",
        knobs: &[],
        run: ablations::ablate_chunks,
    },
    ExperimentDef {
        id: "ablate-batch",
        title: "ablation: per-replica batch size vs throughput and staleness",
        knobs: &[],
        run: ablations::ablate_batch,
    },
    ExperimentDef {
        id: "ablate-evolution",
        title: "ablation: evolving trajectory lengths",
        knobs: &[],
        run: ablations::ablate_evolution,
    },
    ExperimentDef {
        id: "chaos",
        title: "seeded fault schedules with invariant checking (spec: specs/chaos-sweep.toml)",
        knobs: &["--chaos-seed"],
        run: chaos::chaos,
    },
    ExperimentDef {
        id: "recovery",
        title: "degradation, MTTR, checkpoint/restore (spec: specs/recovery-sweep.toml)",
        knobs: &["--recovery-seed", "--checkpoint-every", "--resume-from"],
        run: recovery::recovery,
    },
    ExperimentDef {
        id: "fleet",
        title: "fleet control plane: admission routing, quarantine, chaos invariants (spec: specs/fleet-chaos.toml)",
        knobs: &["--fleet-cells", "--fleet-seed"],
        run: fleet::fleet,
    },
];

/// Looks up a registered experiment by id.
pub fn find_experiment(id: &str) -> Option<&'static ExperimentDef> {
    REGISTRY.iter().find(|e| e.id == id)
}

/// Every experiment id, in paper order (derived from [`REGISTRY`]).
pub fn all_experiment_ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.id).collect()
}

/// Runs one experiment by id, returning the report text.
///
/// # Panics
///
/// Panics on an unknown id; use [`all_experiment_ids`] to enumerate.
pub fn run_experiment(id: &str, opts: &Opts) -> String {
    let def = find_experiment(id).unwrap_or_else(|| panic!("unknown experiment id: {id}"));
    (def.run)(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let ids = all_experiment_ids();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn quick_scales_keep_endpoints() {
        let o = Opts::default();
        let s = o.scales(&ModelSpec::qwen_7b());
        assert_eq!(s, vec![16, 64, 256]);
        let full = Opts {
            quick: false,
            ..Opts::default()
        };
        assert_eq!(full.scales(&ModelSpec::qwen_7b()).len(), 5);
    }
}
