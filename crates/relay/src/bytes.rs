//! A minimal cheaply-cloneable byte buffer.
//!
//! The relay tier moves weight blobs between threads and slices them into
//! broadcast chunks. Copying a multi-gigabyte blob per chunk would swamp the
//! runtime, so [`Bytes`] shares one allocation behind an `Arc` and a slice is
//! just a `(start, end)` window over it — the same shape as the `bytes`
//! crate's type, reimplemented here so the workspace builds with no external
//! dependencies.

use std::fmt;
use std::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer supporting zero-copy slicing.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-slice of this view. Panics if the range is out of
    /// bounds, matching slice-indexing semantics.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.start <= range.end, "slice range inverted");
        assert!(self.start + range.end <= self.end, "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Wraps an owned vector without copying.
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_and_windows_correctly() {
        let b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let mid = b.slice(10..20);
        assert_eq!(mid.len(), 10);
        assert_eq!(&*mid, &(10u8..20).collect::<Vec<u8>>()[..]);
        let inner = mid.slice(2..5);
        assert_eq!(&*inner, &[12u8, 13, 14]);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from(vec![0u8, 1, 2, 3]).slice(1..4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..6);
    }
}
