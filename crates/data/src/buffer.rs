//! The experience buffer with pluggable sampling and eviction (§3.1, §6).
//!
//! Completed trajectories land here (step ③); the trainer samples batches
//! (step ④) without ever blocking generation. The paper exposes writer and
//! sampler APIs so users can customize the sampling strategy and the
//! eviction strategy; this module provides the strategies its experiments
//! use (FIFO for the convergence runs, Appendix A.2) plus the
//! priority-based families discussed in §6 and Appendix C.

use crate::experience::Experience;
use laminar_sim::SimRng;
use std::collections::VecDeque;

/// Trainer-side sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampler {
    /// Oldest completed trajectories first (the paper's default).
    Fifo,
    /// Newest first — prioritizes near-on-policy data.
    Lifo,
    /// FIFO restricted to experiences with staleness ≤ the bound; older
    /// entries are skipped (and left for eviction).
    StalenessCapped {
        /// Maximum admissible staleness, in actor versions.
        max_staleness: u64,
    },
    /// Uniformly random without replacement.
    Random,
}

/// Buffer eviction strategy applied on insertion overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// Unbounded buffer.
    None,
    /// Keep at most `capacity` experiences, dropping the oldest.
    DropOldest {
        /// Maximum buffer occupancy.
        capacity: usize,
    },
    /// Drop experiences whose staleness exceeds the bound at sampling time.
    MaxStaleness {
        /// Maximum staleness kept in the buffer.
        max_staleness: u64,
    },
}

/// Occupancy and flow statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BufferStats {
    /// Experiences currently held.
    pub occupancy: usize,
    /// Total writes accepted.
    pub written: u64,
    /// Total experiences handed to the trainer.
    pub sampled: u64,
    /// Total experiences evicted.
    pub evicted: u64,
}

/// The experience buffer.
#[derive(Debug, Clone)]
pub struct ExperienceBuffer {
    entries: VecDeque<Experience>,
    sampler: Sampler,
    eviction: Eviction,
    stats: BufferStats,
    /// Monotone mutation counter: bumped by every mutating method. The
    /// delta-checkpoint encoder compares it against the epoch it last
    /// encoded at and skips re-encoding the buffer plane wholesale when
    /// nothing changed between cadence points.
    epoch: u64,
}

impl ExperienceBuffer {
    /// Creates a buffer with the given strategies.
    pub fn new(sampler: Sampler, eviction: Eviction) -> Self {
        ExperienceBuffer {
            entries: VecDeque::new(),
            sampler,
            eviction,
            stats: BufferStats::default(),
            epoch: 0,
        }
    }

    /// Monotone mutation epoch: unchanged iff no mutating method ran since
    /// the value was last observed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The paper's convergence-experiment configuration: FIFO, unbounded.
    pub fn fifo_unbounded() -> Self {
        ExperienceBuffer::new(Sampler::Fifo, Eviction::None)
    }

    /// The sampling strategy currently in effect.
    pub fn sampler(&self) -> Sampler {
        self.sampler
    }

    /// The eviction strategy in effect.
    pub fn eviction(&self) -> Eviction {
        self.eviction
    }

    /// Swaps the sampling strategy mid-run. The degraded-mode driver uses
    /// this to relax a staleness cap within its configured bound and to
    /// restore it on recovery; buffered experiences are untouched.
    pub fn set_sampler(&mut self, sampler: Sampler) {
        self.epoch += 1;
        self.sampler = sampler;
    }

    /// Writer API: appends one completed experience, applying eviction.
    pub fn write(&mut self, exp: Experience) {
        self.epoch += 1;
        self.entries.push_back(exp);
        self.stats.written += 1;
        if let Eviction::DropOldest { capacity } = self.eviction {
            while self.entries.len() > capacity {
                self.entries.pop_front();
                self.stats.evicted += 1;
            }
        }
        self.stats.occupancy = self.entries.len();
    }

    /// Number of experiences ready for sampling at `current_version` (for
    /// staleness-capped samplers only admissible entries count).
    pub fn ready(&self, current_version: u64) -> usize {
        match self.sampler {
            Sampler::StalenessCapped { max_staleness } => self
                .entries
                .iter()
                .filter(|e| e.staleness(current_version) <= max_staleness)
                .count(),
            _ => self.entries.len(),
        }
    }

    /// Sampler API: removes and returns up to `n` experiences according to
    /// the sampling strategy. `current_version` is the actor's version
    /// (used for staleness filtering/eviction); `rng` drives randomized
    /// strategies.
    pub fn sample(&mut self, n: usize, current_version: u64, rng: &mut SimRng) -> Vec<Experience> {
        self.epoch += 1;
        if let Eviction::MaxStaleness { max_staleness } = self.eviction {
            let before = self.entries.len();
            self.entries
                .retain(|e| e.staleness(current_version) <= max_staleness);
            self.stats.evicted += (before - self.entries.len()) as u64;
        }
        let mut out = Vec::with_capacity(n);
        match self.sampler {
            Sampler::Fifo => {
                for _ in 0..n {
                    match self.entries.pop_front() {
                        Some(e) => out.push(e),
                        None => break,
                    }
                }
            }
            Sampler::Lifo => {
                for _ in 0..n {
                    match self.entries.pop_back() {
                        Some(e) => out.push(e),
                        None => break,
                    }
                }
            }
            Sampler::StalenessCapped { max_staleness } => {
                // Single mark-and-drain pass — O(len), not O(len²) as a
                // per-element `VecDeque::remove` would be. Marks the first
                // `n` admissible entries in scan order, then partitions.
                let mut marks = vec![false; self.entries.len()];
                let mut taken = 0;
                for (i, e) in self.entries.iter().enumerate() {
                    if taken == n {
                        break;
                    }
                    if e.staleness(current_version) <= max_staleness {
                        marks[i] = true;
                        taken += 1;
                    }
                }
                if taken > 0 {
                    let mut kept = VecDeque::with_capacity(self.entries.len() - taken);
                    for (e, marked) in self.entries.drain(..).zip(marks) {
                        if marked {
                            out.push(e);
                        } else {
                            kept.push_back(e);
                        }
                    }
                    self.entries = kept;
                }
            }
            Sampler::Random => {
                // Partial Fisher–Yates over an index array, then one drain:
                // O(len) total. The RNG draw sequence (len, len-1, …) matches
                // the old per-element `remove` loop, and picks come out in
                // draw order, so behaviour is unchanged — only the quadratic
                // shifting is gone.
                let k = n.min(self.entries.len());
                if k > 0 {
                    let len = self.entries.len();
                    let mut idx: Vec<u32> = (0..len as u32).collect();
                    for i in 0..k {
                        let j = i + rng.index(len - i);
                        idx.swap(i, j);
                    }
                    let mut slots: Vec<Option<Experience>> =
                        self.entries.drain(..).map(Some).collect();
                    for &p in &idx[..k] {
                        out.push(slots[p as usize].take().expect("picks are distinct"));
                    }
                    self.entries = slots.into_iter().flatten().collect();
                }
            }
        }
        self.stats.sampled += out.len() as u64;
        self.stats.occupancy = self.entries.len();
        out
    }

    /// Number of *complete* GRPO groups present: prompts with all
    /// `group_size` responses resident. Critic-free algorithms (GRPO, RLOO,
    /// DAPO) need whole groups to normalize advantages.
    pub fn complete_groups(&self, group_size: usize) -> usize {
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for e in &self.entries {
            *counts.entry(e.prompt_id).or_default() += 1;
        }
        counts.values().filter(|&&c| c >= group_size.max(1)).count()
    }

    /// Sampler API for group-based algorithms: removes and returns up to
    /// `n_groups` *complete* groups of `group_size` responses, oldest
    /// prompt first (by its earliest completion). Incomplete groups stay
    /// in the buffer until their stragglers arrive.
    pub fn sample_groups(&mut self, n_groups: usize, group_size: usize) -> Vec<Vec<Experience>> {
        self.epoch += 1;
        let group_size = group_size.max(1);
        let mut counts: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for e in &self.entries {
            *counts.entry(e.prompt_id).or_default() += 1;
        }
        // Prompts whose groups are complete, in oldest-first buffer order.
        let mut chosen: Vec<u64> = Vec::with_capacity(n_groups);
        for e in &self.entries {
            if chosen.len() == n_groups {
                break;
            }
            if counts.get(&e.prompt_id).copied().unwrap_or(0) >= group_size
                && !chosen.contains(&e.prompt_id)
            {
                chosen.push(e.prompt_id);
            }
        }
        let mut out: Vec<Vec<Experience>> = chosen.iter().map(|_| Vec::new()).collect();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            match chosen.iter().position(|&p| p == e.prompt_id) {
                Some(i) if out[i].len() < group_size => out[i].push(e),
                _ => kept.push_back(e),
            }
        }
        self.entries = kept;
        self.stats.sampled += out.iter().map(Vec::len).sum::<usize>() as u64;
        self.stats.occupancy = self.entries.len();
        out
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Flow statistics.
    pub fn stats(&self) -> BufferStats {
        let mut s = self.stats;
        s.occupancy = self.entries.len();
        s
    }

    /// Iterates current entries oldest-first (inspection only).
    pub fn iter(&self) -> impl Iterator<Item = &Experience> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_sim::Time;

    fn exp(id: u64, version: u64) -> Experience {
        Experience {
            trajectory_id: id,
            prompt_id: id / 16,
            group_index: (id % 16) as usize,
            prompt_tokens: 100,
            response_tokens: 1000,
            policy_versions: vec![version],
            started_at: Time::ZERO,
            finished_at: Time::from_secs(1),
        }
    }

    #[test]
    fn fifo_samples_oldest_first() {
        let mut b = ExperienceBuffer::fifo_unbounded();
        for i in 0..5 {
            b.write(exp(i, 0));
        }
        let mut rng = SimRng::new(1);
        let got = b.sample(3, 0, &mut rng);
        let ids: Vec<u64> = got.iter().map(|e| e.trajectory_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.stats().sampled, 3);
    }

    #[test]
    fn lifo_samples_newest_first() {
        let mut b = ExperienceBuffer::new(Sampler::Lifo, Eviction::None);
        for i in 0..4 {
            b.write(exp(i, 0));
        }
        let mut rng = SimRng::new(1);
        let ids: Vec<u64> = b
            .sample(2, 0, &mut rng)
            .iter()
            .map(|e| e.trajectory_id)
            .collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn staleness_capped_skips_stale() {
        let mut b = ExperienceBuffer::new(
            Sampler::StalenessCapped { max_staleness: 1 },
            Eviction::None,
        );
        b.write(exp(0, 1)); // staleness 4 at version 5
        b.write(exp(1, 5)); // staleness 0
        b.write(exp(2, 4)); // staleness 1
        let mut rng = SimRng::new(1);
        assert_eq!(b.ready(5), 2);
        let ids: Vec<u64> = b
            .sample(5, 5, &mut rng)
            .iter()
            .map(|e| e.trajectory_id)
            .collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(b.len(), 1); // the stale one remains
    }

    #[test]
    fn drop_oldest_eviction_caps_occupancy() {
        let mut b = ExperienceBuffer::new(Sampler::Fifo, Eviction::DropOldest { capacity: 3 });
        for i in 0..10 {
            b.write(exp(i, 0));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.stats().evicted, 7);
        let mut rng = SimRng::new(1);
        let ids: Vec<u64> = b
            .sample(3, 0, &mut rng)
            .iter()
            .map(|e| e.trajectory_id)
            .collect();
        assert_eq!(ids, vec![7, 8, 9]);
    }

    #[test]
    fn max_staleness_eviction_purges_on_sample() {
        let mut b =
            ExperienceBuffer::new(Sampler::Fifo, Eviction::MaxStaleness { max_staleness: 2 });
        b.write(exp(0, 1));
        b.write(exp(1, 9));
        let mut rng = SimRng::new(1);
        let got = b.sample(5, 10, &mut rng);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].trajectory_id, 1);
        assert_eq!(b.stats().evicted, 1);
    }

    #[test]
    fn random_sampling_returns_all_without_replacement() {
        let mut b = ExperienceBuffer::new(Sampler::Random, Eviction::None);
        for i in 0..20 {
            b.write(exp(i, 0));
        }
        let mut rng = SimRng::new(2);
        let got = b.sample(20, 0, &mut rng);
        let mut ids: Vec<u64> = got.iter().map(|e| e.trajectory_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        assert!(b.is_empty());
    }

    fn exp_group(prompt: u64, idx: usize) -> Experience {
        Experience {
            trajectory_id: prompt * 16 + idx as u64,
            prompt_id: prompt,
            group_index: idx,
            prompt_tokens: 100,
            response_tokens: 1000,
            policy_versions: vec![0],
            started_at: Time::ZERO,
            finished_at: Time::from_secs(prompt),
        }
    }

    #[test]
    fn group_sampling_takes_only_complete_groups() {
        let mut b = ExperienceBuffer::fifo_unbounded();
        // Prompt 0: complete group of 4; prompt 1: only 2 of 4.
        for i in 0..4 {
            b.write(exp_group(0, i));
        }
        for i in 0..2 {
            b.write(exp_group(1, i));
        }
        assert_eq!(b.complete_groups(4), 1);
        let groups = b.sample_groups(5, 4);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
        assert!(groups[0].iter().all(|e| e.prompt_id == 0));
        // The incomplete group stays behind.
        assert_eq!(b.len(), 2);
        // Its stragglers arriving later complete it.
        for i in 2..4 {
            b.write(exp_group(1, i));
        }
        let groups = b.sample_groups(5, 4);
        assert_eq!(groups.len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn group_sampling_oldest_prompt_first() {
        let mut b = ExperienceBuffer::fifo_unbounded();
        for p in [3u64, 1, 2] {
            for i in 0..2 {
                b.write(exp_group(p, i));
            }
        }
        let groups = b.sample_groups(2, 2);
        let prompts: Vec<u64> = groups.iter().map(|g| g[0].prompt_id).collect();
        assert_eq!(prompts, vec![3, 1], "buffer-arrival order decides");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn group_sampling_excess_members_remain() {
        let mut b = ExperienceBuffer::fifo_unbounded();
        for i in 0..6 {
            b.write(exp_group(7, i));
        }
        let groups = b.sample_groups(1, 4);
        assert_eq!(groups[0].len(), 4);
        assert_eq!(b.len(), 2, "extra responses of the prompt stay buffered");
    }

    /// The mark-and-drain rewrite must keep the first-n-admissible-in-scan-
    /// order semantics and leave the remainder in arrival order.
    #[test]
    fn staleness_capped_preserves_scan_order_and_remainder() {
        let mut b = ExperienceBuffer::new(
            Sampler::StalenessCapped { max_staleness: 0 },
            Eviction::None,
        );
        // Admissible (version 5) and stale entries interleaved.
        for (id, v) in [(0, 5), (1, 2), (2, 5), (3, 3), (4, 5), (5, 5), (6, 1)] {
            b.write(exp(id, v));
        }
        let mut rng = SimRng::new(1);
        let ids: Vec<u64> = b
            .sample(3, 5, &mut rng)
            .iter()
            .map(|e| e.trajectory_id)
            .collect();
        assert_eq!(ids, vec![0, 2, 4], "first n admissible, scan order");
        let left: Vec<u64> = b.iter().map(|e| e.trajectory_id).collect();
        assert_eq!(left, vec![1, 3, 5, 6], "remainder keeps arrival order");
    }

    #[test]
    fn random_partial_sample_is_distinct_and_remainder_ordered() {
        let mut b = ExperienceBuffer::new(Sampler::Random, Eviction::None);
        for i in 0..50 {
            b.write(exp(i, 0));
        }
        let mut rng = SimRng::new(7);
        let got = b.sample(20, 0, &mut rng);
        assert_eq!(got.len(), 20);
        let mut ids: Vec<u64> = got.iter().map(|e| e.trajectory_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20, "sampling is without replacement");
        assert_eq!(b.len(), 30);
        let left: Vec<u64> = b.iter().map(|e| e.trajectory_id).collect();
        let mut sorted = left.clone();
        sorted.sort_unstable();
        assert_eq!(left, sorted, "unsampled entries keep arrival order");
    }

    #[test]
    fn sampling_empty_buffer_returns_nothing() {
        let mut b = ExperienceBuffer::fifo_unbounded();
        let mut rng = SimRng::new(3);
        assert!(b.sample(4, 0, &mut rng).is_empty());
    }
}
