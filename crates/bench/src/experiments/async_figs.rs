//! Laminar-specific figures: Figure 10 (inherent staleness), Figure 15
//! (fault tolerance), Figure 16 + Table 1 (repack efficiency).

use crate::experiments::Opts;
use crate::table::{f1, f2, TextTable};
use laminar_baselines::RlSystem;
use laminar_cluster::ModelSpec;
use laminar_core::{system::IdlenessMetric, FaultEvent, LaminarSystem, SystemKind};
use laminar_sim::{Duration, Time};
use laminar_workload::{Checkpoint, WorkloadGenerator};
use std::fmt::Write as _;

/// Figure 10: inherent staleness distribution over finish-time ranges.
pub fn fig10(opts: &Opts) -> String {
    let model = ModelSpec::qwen_7b();
    let total = if opts.quick { 16 } else { 64 };
    let cfg = opts.config(
        SystemKind::Laminar,
        model,
        total,
        WorkloadGenerator::single_turn(opts.seed, Checkpoint::Math7B),
    );
    let report = LaminarSystem::default().run(&cfg);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 10 — inherent staleness over trajectory finish-time ranges\n(7B math, {total} GPUs, Laminar)\n"
    );
    let points = &report.staleness_by_finish;
    if points.is_empty() {
        return out + "no measured completions\n";
    }
    let t_max = points.iter().map(|&(t, _)| t).fold(0.0f64, f64::max);
    let t_min = points.iter().map(|&(t, _)| t).fold(f64::INFINITY, f64::min);
    let ranges = 5usize;
    let width = ((t_max - t_min) / ranges as f64).max(1e-9);
    let mut counts = vec![[0usize; 5]; ranges]; // staleness 0..3, >=4
    for &(t, s) in points {
        let r = (((t - t_min) / width) as usize).min(ranges - 1);
        counts[r][(s as usize).min(4)] += 1;
    }
    let mut t = TextTable::new(vec!["finish range", "s=0", "s=1", "s=2", "s=3", "s>=4"]);
    for (r, c) in counts.iter().enumerate() {
        let total: usize = c.iter().sum();
        let pct = |n: usize| {
            if total == 0 {
                "-".to_string()
            } else {
                format!("{:.0}%", n as f64 / total as f64 * 100.0)
            }
        };
        t.row(vec![
            format!(
                "{:.0}-{:.0}s",
                t_min + r as f64 * width,
                t_min + (r + 1) as f64 * width
            ),
            pct(c[0]),
            pct(c[1]),
            pct(c[2]),
            pct(c[3]),
            pct(c[4]),
        ]);
    }
    out.push_str(&t.render());
    let max_s = report.max_staleness();
    let _ = writeln!(
        out,
        "\nmax observed staleness: {max_s} (paper: consistently low, typically under 3,\n\
         never above 4 in any experiment); no staleness bound is configured — it\n\
         emerges from generation latency and trainer speed."
    );
    out
}

/// Figure 15: training through a rollout-machine failure.
pub fn fig15(opts: &Opts) -> String {
    let model = if opts.quick {
        ModelSpec::qwen_7b()
    } else {
        ModelSpec::qwen_32b()
    };
    let total = if opts.quick { 16 } else { 128 };
    let mut cfg = opts.config(
        SystemKind::Laminar,
        model,
        total,
        WorkloadGenerator::single_turn(opts.seed, Checkpoint::Math7B),
    );
    cfg.iterations = if opts.quick { 4 } else { 5 };
    cfg.warmup = 0;
    // One machine hosts gpus_per_machine / tp replicas (two in the paper's
    // 32B TP=4 setting).
    let per_machine = (8 / cfg.rollout_tp).clamp(1, cfg.replicas().saturating_sub(1).max(1));
    let sys = LaminarSystem {
        faults: vec![FaultEvent::machine_crash(
            Time::from_secs(if opts.quick { 60 } else { 180 }),
            (0..per_machine).collect(),
            Duration::from_secs(252),
        )],
        record_timeline: true,
        sample_every: Duration::from_secs(if opts.quick { 15 } else { 30 }),
        ..LaminarSystem::default()
    };
    let report = sys.run(&cfg);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 15 — throughput timeline across a rollout-machine failure\n\
         ({} on {total} GPUs; kill {per_machine} replicas, recover after 252s)\n",
        cfg.model.name
    );
    let gmax = report
        .gen_series
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "{:>8}  {:>12}  generation throughput",
        "time", "tokens/s"
    );
    for &(t, v) in report.gen_series.points() {
        let _ = writeln!(
            out,
            "{:>7.0}s  {:>12.0}  {}",
            t.as_secs_f64(),
            v,
            crate::table::bar(v, gmax)
        );
    }
    let _ = writeln!(
        out,
        "\ncompleted {} training iterations through the failure (throughput {:.0} tok/s).\n\
         paper: generation dips at the kill, training continues, and both recover in\n\
         ~252s once the replacement machine initializes from the relay tier.",
        report.iteration_secs.len(),
        report.throughput
    );
    out
}

struct RepackComparison {
    with: laminar_baselines::RunReport,
    without: laminar_baselines::RunReport,
}

fn run_repack_comparison(opts: &Opts) -> RepackComparison {
    // §8.4 setting: 32B, 64 train + 64 rollout GPUs, TP=4 (16 replicas);
    // quick mode shrinks to 7B at 8+8.
    let model = if opts.quick {
        ModelSpec::qwen_7b()
    } else {
        ModelSpec::qwen_32b()
    };
    let total = if opts.quick { 16 } else { 128 };
    let cfg = opts.config(
        SystemKind::Laminar,
        model,
        total,
        WorkloadGenerator::single_turn(opts.seed, Checkpoint::Math7B),
    );
    let with = LaminarSystem::default().run(&cfg);
    let without = LaminarSystem {
        repack: false,
        ..LaminarSystem::default()
    }
    .run(&cfg);
    RepackComparison { with, without }
}

/// Figure 16: generation throughput with and without repack.
pub fn fig16(opts: &Opts) -> String {
    let cmp = run_repack_comparison(opts);
    let mut out = String::from("Figure 16 — repack efficiency\n\n");
    let mut t = TextTable::new(vec!["variant", "throughput (tok/s)", "mean KVCache util"]);
    t.row(vec![
        "w/ repack".to_string(),
        format!("{:.0}", cmp.with.throughput),
        format!("{:.1}%", cmp.with.mean_kv_utilization * 100.0),
    ]);
    t.row(vec![
        "w/o repack".to_string(),
        format!("{:.0}", cmp.without.throughput),
        format!("{:.1}%", cmp.without.mean_kv_utilization * 100.0),
    ]);
    out.push_str(&t.render());
    let gain = (cmp.with.throughput / cmp.without.throughput.max(1e-9) - 1.0) * 100.0;
    let _ = writeln!(
        out,
        "\nrepack gain: {gain:.1}% (paper: +26% generation throughput);\n\
         repack rounds: {}, replicas released: {}",
        cmp.with.repack_events, cmp.with.repack_released
    );
    out
}

/// Table 1: rollout statistics with and without repack.
pub fn table1(opts: &Opts) -> String {
    let cmp = run_repack_comparison(opts);
    let lat = |r: &laminar_baselines::RunReport| {
        let avg = r.latencies.iter().sum::<f64>() / r.latencies.len().max(1) as f64;
        let max = r.latencies.iter().cloned().fold(0.0f64, f64::max);
        (avg, max)
    };
    let (avg_w, max_w) = lat(&cmp.with);
    let (avg_wo, max_wo) = lat(&cmp.without);
    let overhead_per_round = cmp.with.repack_overhead_secs / cmp.with.repack_events.max(1) as f64;
    let mut out = String::from("Table 1 — rollout statistics with and without repack\n\n");
    let mut t = TextTable::new(vec![
        "variant",
        "avg/max gen latency (s)",
        "repack overhead (s)",
        "avg KVCache util",
    ]);
    t.row(vec![
        "w/ repack".to_string(),
        format!("{}/{}", f1(avg_w), f1(max_w)),
        f2(overhead_per_round),
        format!("{:.1}%", cmp.with.mean_kv_utilization * 100.0),
    ]);
    t.row(vec![
        "w/o repack".to_string(),
        format!("{}/{}", f1(avg_wo), f1(max_wo)),
        "-".to_string(),
        format!("{:.1}%", cmp.without.mean_kv_utilization * 100.0),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\npaper: 290/828s vs 296/826s latency (repack does not slow trajectories),\n\
         0.69s overhead per round, +14.8pp average KVCache utilization.\n",
    );
    out
}

/// Shared helper for ablations: Laminar with a specific idleness metric.
pub fn run_with_idleness(opts: &Opts, idleness: IdlenessMetric) -> laminar_baselines::RunReport {
    let cfg = opts.config(
        SystemKind::Laminar,
        ModelSpec::qwen_7b(),
        16,
        WorkloadGenerator::single_turn(opts.seed, Checkpoint::Math7B),
    );
    LaminarSystem {
        idleness,
        ..LaminarSystem::default()
    }
    .run(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_reports_low_staleness() {
        let s = fig10(&Opts::default());
        assert!(s.contains("max observed staleness"));
    }

    #[test]
    fn fig16_repack_helps() {
        let s = fig16(&Opts::default());
        assert!(s.contains("repack gain"));
    }
}
