/root/repo/target/release/deps/laminar_runtime-8b9e73e9670210d7.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs

/root/repo/target/release/deps/liblaminar_runtime-8b9e73e9670210d7.rlib: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs

/root/repo/target/release/deps/liblaminar_runtime-8b9e73e9670210d7.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/config.rs:
crates/runtime/src/report.rs:
crates/runtime/src/trace.rs:
