//! The conservative-lookahead sharded driver (DESIGN.md §11).
//!
//! The serial loop routes every internal replica event through the central
//! scheduler as a `ReplicaWake` — one heap push + pop + handler dispatch per
//! event, all on one core. But between two *global interaction points* the
//! replicas never observe each other: weight publishes, trajectory
//! hand-offs into the experience buffer, repack passes, and chaos events
//! are the only cross-replica effects, and all of them either live in the
//! central event queue or are derivable from engine state. That makes the
//! queue's next event time a *conservative lookahead fence*: every engine
//! may advance freely through its internal events up to the fence with no
//! risk of receiving an effect from the past.
//!
//! The loop, each round:
//!
//! 1. **Fence.** The next central-queue event time (weight publish, trainer
//!    completion, repack tick, fault, …) bounds the lookahead window.
//! 2. **Advance.** [`laminar_rollout::shard::parallel_advance`] fans the
//!    engines across up to `shards` scoped threads; each processes its
//!    internal events up to the fence and stops *at its last event* (never
//!    clamping forward — the forced rate-re-evaluation horizon is keyed off
//!    the engine clock, so clamping would shift recalc instants off the
//!    serial timeline). The scope join is the barrier.
//! 3. **Replay.** Completions that surfaced inside the window are handed
//!    off in global `(finish time, replica)` order, each group at its own
//!    instant: buffer writes, audit, breaker bookkeeping, and the
//!    idle-replica restart all happen exactly as the serial wake chain
//!    would have done them (`World::process_completions` is the shared
//!    body). The restart — the only path where a drained effect feeds back
//!    into an engine — happens at the final completion's instant, which is
//!    precisely the engine's idle time.
//! 4. **Step.** When no hand-off remains inside the window, one central
//!    event is delivered; its handler runs against engines already advanced
//!    to the fence, which is the same state the serial handler saw.
//!
//! Determinism: the shard partition decides only *which thread* runs an
//! engine's (self-contained, deterministic) event loop between fences;
//! every cross-engine effect is applied single-threaded at a barrier in a
//! canonical order no thread schedule can perturb. Reports and traces are
//! therefore byte-identical at any shard count — and byte-identical to the
//! serial driver, up to the measure-zero case of two *distinct* replicas'
//! events landing on the identical nanosecond, where the serial tiebreak
//! (scheduler FIFO seq) is replaced by replica order. The core test suite
//! asserts report + trace equality of serial vs sharded runs outright.

use super::{Ev, LaminarSystem, World};
use laminar_rollout::shard::parallel_advance_chains;
use laminar_runtime::SystemConfig;
use laminar_sim::{Scheduler, Time};

impl LaminarSystem {
    /// Runs the world to completion under the sharded lookahead loop.
    /// Mirrors `execute`'s contract: returns the final world state with
    /// spans still buffered inside.
    pub(super) fn execute_sharded(&self, cfg: &SystemConfig, record_trace: bool) -> World {
        let shards = self.shards.max(1);
        let mut sim = self.build(cfg, record_trace);
        let mut budget: u64 = 2_000_000_000;
        while !sim.world.done() {
            assert!(budget > 0, "laminar run did not complete its iterations");
            budget -= 1;
            let fence = sim.scheduler.next_event_time().unwrap_or(Time::MAX);
            sim.world.advance_shards(fence, shards);
            match sim.world.next_handoff(fence) {
                // A completion group strictly inside the window: replay it
                // at its own instant. (At exactly the fence, the central
                // event keeps priority — see the module determinism note.)
                Some(t) if t < fence => sim.world.replay_handoffs(t, &mut sim.scheduler),
                _ => {
                    let stepped = sim.step();
                    assert!(stepped, "laminar run stalled before completing");
                }
            }
        }
        sim.world
    }
}

impl World {
    /// Replays every engine's wake chains up to `fence` across the shard
    /// workers. Dead and mid-pull replicas are flagged ineligible: their
    /// due wakes are consumed without firing, exactly as the serial
    /// handler's alive/pulling guard consumes them at their instants.
    /// (Eligibility only changes at central events and hand-off replays,
    /// i.e. at window boundaries, so a per-window flag is exact.)
    fn advance_shards(&mut self, fence: Time, shards: usize) {
        let eligible: Vec<bool> = (0..self.engines.len())
            .map(|r| self.alive[r] && !self.pulling[r])
            .collect();
        parallel_advance_chains(&mut self.engines, &mut self.armed, &eligible, fence, shards);
    }

    /// Earliest buffered completion instant at or before `fence` across the
    /// live fleet — the next hand-off interaction the central clock must
    /// observe. Dead replicas keep their undrained completions (the chaos
    /// audit counts them as held work, exactly as the serial path does).
    fn next_handoff(&self, fence: Time) -> Option<Time> {
        self.engines
            .iter()
            .enumerate()
            .filter(|(r, _)| self.alive[*r] && !self.pulling[*r])
            .filter_map(|(_, e)| e.first_completion_time())
            .filter(|t| *t <= fence)
            .min()
    }

    /// Replays every completion group that finished at exactly `t`, in
    /// replica order, through the shared serial delivery path; a replica
    /// that went idle and has nothing further buffered restarts at `t` —
    /// its last event's instant, matching the serial wake chain.
    fn replay_handoffs(&mut self, t: Time, sched: &mut Scheduler<Ev>) {
        for r in 0..self.engines.len() {
            if !self.alive[r] || self.pulling[r] {
                continue;
            }
            if self.engines[r].first_completion_time() != Some(t) {
                continue;
            }
            let group = self.engines[r].take_completions_through(t);
            self.process_completions(r, group, t, sched);
            if self.engines[r].is_idle() && self.engines[r].first_completion_time().is_none() {
                self.refresh_and_restart(r, t, sched);
            }
        }
    }
}
