/root/repo/target/debug/deps/laminar_experiments-5b4c6f306c087d62.d: crates/bench/src/bin/laminar_experiments.rs

/root/repo/target/debug/deps/laminar_experiments-5b4c6f306c087d62: crates/bench/src/bin/laminar_experiments.rs

crates/bench/src/bin/laminar_experiments.rs:
