/root/repo/target/debug/deps/laminar_rl-9c5eaa12ac9e964e.d: crates/rl/src/lib.rs crates/rl/src/algo.rs crates/rl/src/env.rs crates/rl/src/nn.rs crates/rl/src/policy.rs crates/rl/src/ppo.rs crates/rl/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/liblaminar_rl-9c5eaa12ac9e964e.rmeta: crates/rl/src/lib.rs crates/rl/src/algo.rs crates/rl/src/env.rs crates/rl/src/nn.rs crates/rl/src/policy.rs crates/rl/src/ppo.rs crates/rl/src/snapshot.rs Cargo.toml

crates/rl/src/lib.rs:
crates/rl/src/algo.rs:
crates/rl/src/env.rs:
crates/rl/src/nn.rs:
crates/rl/src/policy.rs:
crates/rl/src/ppo.rs:
crates/rl/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
