//! Rollout replicas and the repack mechanism (§5).
//!
//! A *rollout replica* is a TP group of GPUs running continuous-batching
//! auto-regressive generation. [`engine::ReplicaEngine`] simulates one
//! replica in virtual time over the roofline decode model: trajectories are
//! admitted against KVCache reservations, decode in lockstep (every active
//! sequence advances one token per step), detour through environment calls,
//! and complete at their spec-determined lengths. The engine exposes the
//! KVCache-utilization lifecycle of Figure 9, which drives the idleness
//! metric.
//!
//! [`repack`] implements Algorithm 1 (Best-Fit trajectory consolidation),
//! and [`manager`] the rollout manager: per-replica monitoring, weight
//! version grouping, repack triggering, and heartbeat failover.

pub mod engine;
pub mod manager;
pub mod repack;
pub mod shard;
pub mod traj;

pub use engine::reference::NaiveReplicaEngine;
pub use engine::{CompletedTraj, EngineConfig, ReplicaEngine};
pub use manager::{ManagerConfig, ReplicaHealth, RolloutManager};
pub use repack::{plan_repack, RepackPlan, ReplicaLoad};
pub use shard::{parallel_advance, parallel_advance_chains, ShardMessage, ShardedReplicaSet};
pub use traj::{Phase, PolicyVersions, TrajState};
