/root/repo/target/debug/deps/laminar_relay-ea77888430c2626f.d: crates/relay/src/lib.rs crates/relay/src/bytes.rs crates/relay/src/chunk.rs crates/relay/src/model.rs crates/relay/src/runtime.rs

/root/repo/target/debug/deps/liblaminar_relay-ea77888430c2626f.rmeta: crates/relay/src/lib.rs crates/relay/src/bytes.rs crates/relay/src/chunk.rs crates/relay/src/model.rs crates/relay/src/runtime.rs

crates/relay/src/lib.rs:
crates/relay/src/bytes.rs:
crates/relay/src/chunk.rs:
crates/relay/src/model.rs:
crates/relay/src/runtime.rs:
