//! Virtual time and duration types.
//!
//! Both types wrap integer nanoseconds. Floating-point seconds appear only at
//! the edges (converting model latencies in and reporting results out); all
//! scheduling arithmetic is integral so event order never depends on
//! floating-point rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The origin of virtual time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; useful as an "unscheduled" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Builds an instant from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Time {
        Time(secs_to_nanos(s))
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Component-wise minimum.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Builds a span from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Duration {
        Duration(secs_to_nanos(s))
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Component-wise minimum.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Scales the span by a non-negative factor, rounding to the nearest
    /// nanosecond.
    pub fn mul_f64(self, k: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * k)
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if s.is_nan() || s <= 0.0 {
        return 0;
    }
    let ns = s * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Time::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(Time::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(Time::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Duration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn float_conversion_clamps() {
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
        assert_eq!(Time::from_secs_f64(f64::NAN), Time::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::MAX);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = Time::from_secs(10);
        let d = Duration::from_secs(4);
        assert_eq!(t + d, Time::from_secs(14));
        assert_eq!(t - d, Time::from_secs(6));
        assert_eq!(t - Time::from_secs(3), Duration::from_secs(7));
        // Saturation instead of underflow.
        assert_eq!(Time::from_secs(1) - Duration::from_secs(5), Time::ZERO);
        assert_eq!(Time::from_secs(1).since(Time::from_secs(9)), Duration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_secs(2);
        assert_eq!(d * 3, Duration::from_secs(6));
        assert_eq!(d / 2, Duration::from_secs(1));
        assert_eq!(d.mul_f64(0.5), Duration::from_secs(1));
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(format!("{}", Duration::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", Duration::from_secs(3)), "3.000s");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000us");
    }
}
