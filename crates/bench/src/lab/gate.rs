//! Regression gates: per-metric thresholds evaluated against a committed
//! baseline rows file or a sibling variant of the same run.
//!
//! This generalizes the hard-coded 20% rule of `scripts/bench.sh` into
//! declarations carried by the spec: each gate names a (variant, metric,
//! stat) aggregate and bounds it relative to its baseline. Gates *fail
//! closed* — a missing metric, variant, or baseline aggregate is a
//! failure, not a silent pass — and the binary exits nonzero when any
//! gate fails, which is what lets CI block on a regression.

use super::analysis::{parse_rows_jsonl, Summary};
use super::spec::{GateBaseline, GateSpec, LabSpec};
use crate::table::TextTable;
use std::path::Path;

/// One evaluated gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Gate name from the spec.
    pub name: String,
    /// Whether every declared bound held.
    pub pass: bool,
    /// Human-readable comparison carrying everything needed to act on a
    /// failure without re-running: the metric, the observed value, the
    /// baseline it was judged against, and each bound's *computed*
    /// threshold (violated ones marked), e.g.
    /// `laminar throughput mean: observed 98.0, baseline 130.0,
    /// needs >= 104.0000 [VIOLATED] (max_drop 0.2)`.
    pub detail: String,
}

fn evaluate_one(
    gate: &GateSpec,
    summary: &Summary,
    baseline: &Summary,
    baseline_variant: &str,
) -> GateOutcome {
    let value = summary.stat(&gate.variant, &gate.metric, gate.stat);
    let base = baseline.stat(baseline_variant, &gate.metric, gate.stat);
    let (Some(value), Some(base)) = (value, base) else {
        return GateOutcome {
            name: gate.name.clone(),
            pass: false,
            detail: format!(
                "{} {} {}: missing aggregate ({})",
                gate.variant,
                gate.metric,
                gate.stat.name(),
                if value.is_none() { "run" } else { "baseline" },
            ),
        };
    };
    // Each bound is rendered with its computed threshold — the number the
    // observed value was actually compared against — so a failure line is
    // actionable on its own: metric, observed, baseline, and how far the
    // violated threshold was.
    let mut pass = true;
    let mut bounds = Vec::new();
    let mut check = |ok: bool, cmp: &str, threshold: f64, origin: String| {
        pass &= ok;
        bounds.push(format!(
            "{cmp} {threshold:.4}{} ({origin})",
            if ok { "" } else { " [VIOLATED]" },
        ));
    };
    if let Some(d) = gate.max_drop {
        let t = (1.0 - d) * base;
        check(value >= t, ">=", t, format!("max_drop {d}"));
    }
    if let Some(g) = gate.max_growth {
        let t = (1.0 + g) * base;
        check(value <= t, "<=", t, format!("max_growth {g}"));
    }
    if let Some(r) = gate.min_ratio {
        let t = r * base;
        check(value >= t, ">=", t, format!("min_ratio {r}"));
    }
    if let Some(r) = gate.max_ratio {
        let t = r * base;
        check(value <= t, "<=", t, format!("max_ratio {r}"));
    }
    GateOutcome {
        name: gate.name.clone(),
        pass,
        detail: format!(
            "{} {} {}: observed {:.4}, baseline {:.4}, needs {}",
            gate.variant,
            gate.metric,
            gate.stat.name(),
            value,
            base,
            bounds.join(" and "),
        ),
    }
}

/// Evaluates every gate in the spec against the run's summary. File
/// baselines resolve relative to `spec_dir`; an unreadable or unparsable
/// baseline is a configuration error (`Err`), while an out-of-bounds or
/// missing aggregate is a failed gate.
pub fn evaluate_gates(
    spec: &LabSpec,
    summary: &Summary,
    spec_dir: &Path,
) -> Result<Vec<GateOutcome>, String> {
    let mut outcomes = Vec::with_capacity(spec.gates.len());
    for gate in &spec.gates {
        let outcome = match &gate.baseline {
            GateBaseline::Variant(v) => evaluate_one(gate, summary, summary, v),
            GateBaseline::File(rel) => {
                let path = if Path::new(rel).is_absolute() {
                    Path::new(rel).to_path_buf()
                } else {
                    spec_dir.join(rel)
                };
                let text = std::fs::read_to_string(&path).map_err(|e| {
                    format!(
                        "gate `{}`: reading baseline {}: {e}",
                        gate.name,
                        path.display()
                    )
                })?;
                let rows = parse_rows_jsonl(&text).map_err(|e| {
                    format!("gate `{}`: baseline {}: {e}", gate.name, path.display())
                })?;
                let base = Summary::from_rows(&rows);
                evaluate_one(gate, summary, &base, &gate.variant)
            }
        };
        outcomes.push(outcome);
    }
    Ok(outcomes)
}

/// Renders gate outcomes as a table; empty string when the spec has none.
pub fn render_gates(outcomes: &[GateOutcome]) -> String {
    if outcomes.is_empty() {
        return String::new();
    }
    let mut t = TextTable::new(vec!["gate", "result", "detail"]);
    for o in outcomes {
        t.row(vec![
            o.name.clone(),
            if o.pass { "pass" } else { "FAIL" }.to_string(),
            o.detail.clone(),
        ]);
    }
    t.render()
}

/// True iff every gate passed.
pub fn all_pass(outcomes: &[GateOutcome]) -> bool {
    outcomes.iter().all(|o| o.pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::analysis::{write_rows_jsonl, TrialRow};

    fn row(variant: &str, seed: u64, tp: f64) -> TrialRow {
        TrialRow {
            variant: variant.into(),
            seed,
            repeat: 0,
            metrics: vec![("throughput".into(), tp)],
            note: String::new(),
        }
    }

    fn spec_with_gate(gate_lines: &str) -> LabSpec {
        LabSpec::parse(&format!(
            "name = \"g\"\nseeds = [1]\n[variant.laminar]\nsystem = \"laminar\"\n\
             [variant.verl]\nsystem = \"verl\"\n[gate.g]\n{gate_lines}"
        ))
        .expect("parse")
    }

    #[test]
    fn variant_baseline_gates() {
        let spec = spec_with_gate(
            "metric = \"throughput\"\nvariant = \"laminar\"\nbaseline_variant = \"verl\"\nmin_ratio = 1.5",
        );
        let pass = Summary::from_rows(&[row("laminar", 1, 300.0), row("verl", 1, 100.0)]);
        let fail = Summary::from_rows(&[row("laminar", 1, 120.0), row("verl", 1, 100.0)]);
        let out = evaluate_gates(&spec, &pass, Path::new(".")).expect("eval");
        assert!(all_pass(&out), "{out:?}");
        let out = evaluate_gates(&spec, &fail, Path::new(".")).expect("eval");
        assert!(!all_pass(&out), "{out:?}");
        assert!(render_gates(&out).contains("FAIL"));
    }

    #[test]
    fn file_baseline_gates_resolve_relative_to_spec_dir() {
        let dir = std::env::temp_dir().join(format!("laminar-gate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let baseline = [row("laminar", 1, 100.0), row("laminar", 2, 110.0)];
        std::fs::write(dir.join("base.jsonl"), write_rows_jsonl("g", &baseline)).expect("write");
        let spec = spec_with_gate(
            "metric = \"throughput\"\nvariant = \"laminar\"\nbaseline = \"base.jsonl\"\nmax_drop = 0.2",
        );
        let ok = Summary::from_rows(&[row("laminar", 1, 95.0)]);
        let out = evaluate_gates(&spec, &ok, &dir).expect("eval");
        assert!(all_pass(&out), "{out:?}");
        let bad = Summary::from_rows(&[row("laminar", 1, 50.0)]);
        let out = evaluate_gates(&spec, &bad, &dir).expect("eval");
        assert!(!all_pass(&out), "{out:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_detail_names_metric_observed_baseline_and_threshold() {
        let spec = spec_with_gate(
            "metric = \"throughput\"\nvariant = \"laminar\"\nbaseline_variant = \"verl\"\nmax_drop = 0.2",
        );
        let s = Summary::from_rows(&[row("laminar", 1, 50.0), row("verl", 1, 100.0)]);
        let out = evaluate_gates(&spec, &s, Path::new(".")).expect("eval");
        assert!(!all_pass(&out), "{out:?}");
        let d = &out[0].detail;
        assert!(d.contains("throughput mean"), "{d}");
        assert!(d.contains("observed 50.0000"), "{d}");
        assert!(d.contains("baseline 100.0000"), "{d}");
        assert!(d.contains(">= 80.0000 [VIOLATED] (max_drop 0.2)"), "{d}");
        assert!(!d.contains('\n'), "detail stays on one line: {d}");
    }

    #[test]
    fn missing_aggregate_fails_closed() {
        let spec = spec_with_gate(
            "metric = \"nope\"\nvariant = \"laminar\"\nbaseline_variant = \"verl\"\nmin_ratio = 1.0",
        );
        let s = Summary::from_rows(&[row("laminar", 1, 1.0), row("verl", 1, 1.0)]);
        let out = evaluate_gates(&spec, &s, Path::new(".")).expect("eval");
        assert!(!all_pass(&out), "{out:?}");
        assert!(out[0].detail.contains("missing aggregate"), "{out:?}");
    }

    #[test]
    fn unreadable_file_baseline_is_a_config_error() {
        let spec = spec_with_gate(
            "metric = \"throughput\"\nvariant = \"laminar\"\nbaseline = \"does-not-exist.jsonl\"\nmax_drop = 0.2",
        );
        let s = Summary::from_rows(&[row("laminar", 1, 1.0)]);
        assert!(evaluate_gates(&spec, &s, Path::new("/nonexistent-dir")).is_err());
    }
}
