//! Table 2: GPU allocations per system, model scale, and cluster size.
//!
//! The paper tunes train/rollout splits per system to balance generation
//! and training throughput; Laminar's higher generation efficiency lets it
//! shift GPUs toward the trainer at large scale.

use crate::hyper::SystemKind;
use laminar_cluster::ModelSpec;
use laminar_runtime::SystemConfig;
use laminar_workload::WorkloadGenerator;

/// One evaluated cluster size for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Model evaluated.
    pub model: ModelSpec,
    /// Total GPUs.
    pub total_gpus: usize,
}

/// A train/rollout GPU split plus the rollout TP degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Trainer GPUs (0 = colocated).
    pub train: usize,
    /// Rollout GPUs.
    pub rollout: usize,
    /// Rollout tensor parallelism.
    pub tp: usize,
}

/// Size class of a model (selects the Table 2 column).
fn size_class(model: &ModelSpec) -> usize {
    if model.params < 10e9 {
        0 // 7B
    } else if model.params < 50e9 {
        1 // 32B
    } else {
        2 // 72B
    }
}

/// The cluster sizes evaluated per model in Figure 11.
pub fn paper_scales(model: &ModelSpec) -> Vec<usize> {
    match size_class(model) {
        0 => vec![16, 32, 64, 128, 256],
        1 => vec![32, 64, 128, 256, 512],
        _ => vec![64, 128, 256, 512, 1024],
    }
}

/// Rollout TP per Table 2 / Appendix A.2.
fn rollout_tp(kind: SystemKind, class: usize) -> usize {
    match class {
        0 => match kind {
            // AReaL and Laminar run 7B at TP=1 to maximize throughput;
            // batch-synchronized systems use TP=2 to shorten the tail.
            SystemKind::PartialRollout | SystemKind::Laminar => 1,
            _ => 2,
        },
        1 => 4,
        _ => 8,
    }
}

/// The Table 2 placement for a system/model/scale.
///
/// # Panics
///
/// Panics when `total_gpus` is not one of the paper's evaluated scales for
/// that model.
pub fn placement_for(kind: SystemKind, model: &ModelSpec, total_gpus: usize) -> Placement {
    let class = size_class(model);
    let scales = paper_scales(model);
    let idx = scales
        .iter()
        .position(|&s| s == total_gpus)
        .unwrap_or_else(|| panic!("{total_gpus} GPUs is not a paper scale for {}", model.name));
    let tp = rollout_tp(kind, class);
    let (train, rollout) = match kind {
        SystemKind::Verl => (0, total_gpus),
        SystemKind::OneStep | SystemKind::StreamGen => {
            let splits: [[(usize, usize); 5]; 3] = [
                [(8, 8), (8, 24), (16, 48), (32, 96), (40, 216)],
                [(16, 16), (32, 32), (48, 80), (64, 192), (80, 432)],
                [(32, 32), (64, 64), (96, 160), (192, 320), (256, 768)],
            ];
            splits[class][idx]
        }
        SystemKind::PartialRollout => {
            let splits: [[(usize, usize); 5]; 3] = [
                [(8, 8), (16, 16), (32, 32), (64, 64), (128, 128)],
                [(16, 16), (32, 32), (64, 64), (128, 128), (256, 256)],
                [(32, 32), (64, 64), (128, 128), (320, 192), (640, 384)],
            ];
            splits[class][idx]
        }
        SystemKind::Laminar => {
            // The paper tunes placements by balancing generation and
            // training throughput in *its* environment (its 7B column is
            // (8,8),(24,8),(40,24),(80,48),(192,64)). Our roofline trainer
            // achieves a higher MFU relative to generation than the paper's
            // stack, so the same methodology lands on an even split for 7B;
            // the 32B/72B columns match the paper exactly. Recorded as a
            // substitution in DESIGN.md/EXPERIMENTS.md.
            let splits: [[(usize, usize); 5]; 3] = [
                [(8, 8), (16, 16), (32, 32), (64, 64), (128, 128)],
                [(16, 16), (32, 32), (64, 64), (128, 128), (256, 256)],
                [(32, 32), (64, 64), (128, 128), (320, 192), (640, 384)],
            ];
            splits[class][idx]
        }
    };
    Placement { train, rollout, tp }
}

/// Builds the full [`SystemConfig`] for a system at a paper scale.
pub fn build_config(
    kind: SystemKind,
    model: ModelSpec,
    total_gpus: usize,
    workload: WorkloadGenerator,
) -> SystemConfig {
    let p = placement_for(kind, &model, total_gpus);
    SystemConfig::new(model, p.train, p.rollout, p.tp, workload)
}

/// All `(total_gpus, placement)` pairs for a system/model (Table 2 rows).
pub fn paper_configs(kind: SystemKind, model: &ModelSpec) -> Vec<(usize, Placement)> {
    paper_scales(model)
        .into_iter()
        .map(|s| (s, placement_for(kind, model, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placements_sum_to_total() {
        for kind in [
            SystemKind::Verl,
            SystemKind::OneStep,
            SystemKind::StreamGen,
            SystemKind::PartialRollout,
            SystemKind::Laminar,
        ] {
            for model in ModelSpec::paper_models() {
                for (total, p) in paper_configs(kind, &model) {
                    let used = if p.train == 0 {
                        p.rollout
                    } else {
                        p.train + p.rollout
                    };
                    assert_eq!(used, total, "{kind:?} {} {total}", model.name);
                    assert_eq!(p.rollout % p.tp, 0, "rollout GPUs divisible by TP");
                }
            }
        }
    }

    #[test]
    fn laminar_shifts_gpus_to_trainer_at_scale() {
        // At the 72B scale the paper (and we) give Laminar proportionally
        // more trainer GPUs as the cluster grows.
        let m = ModelSpec::qwen_72b();
        let small = placement_for(SystemKind::Laminar, &m, 64);
        let large = placement_for(SystemKind::Laminar, &m, 1024);
        assert!(
            large.train as f64 / large.rollout as f64 > small.train as f64 / small.rollout as f64
        );
        assert_eq!(large.train, 640);
        assert_eq!(large.rollout, 384);
    }

    #[test]
    fn tp_matches_appendix() {
        let m7 = ModelSpec::qwen_7b();
        assert_eq!(placement_for(SystemKind::Laminar, &m7, 16).tp, 1);
        assert_eq!(placement_for(SystemKind::OneStep, &m7, 16).tp, 2);
        let m32 = ModelSpec::qwen_32b();
        assert_eq!(placement_for(SystemKind::Verl, &m32, 32).tp, 4);
        let m72 = ModelSpec::qwen_72b();
        assert_eq!(placement_for(SystemKind::Laminar, &m72, 1024).tp, 8);
    }

    #[test]
    #[should_panic(expected = "not a paper scale")]
    fn unknown_scale_panics() {
        let _ = placement_for(SystemKind::Verl, &ModelSpec::qwen_7b(), 48);
    }

    #[test]
    fn build_config_produces_runnable_shape() {
        let cfg = build_config(
            SystemKind::Laminar,
            ModelSpec::qwen_7b(),
            16,
            laminar_workload::WorkloadGenerator::single_turn(
                1,
                laminar_workload::Checkpoint::Math7B,
            ),
        );
        assert_eq!(cfg.total_gpus(), 16);
        assert_eq!(cfg.replicas(), 8);
    }
}
