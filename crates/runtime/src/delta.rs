//! Incremental delta checkpoints: content-addressed chunk store, manifests,
//! and the canonical state-image encoding (DESIGN.md §12).
//!
//! A [`StateImage`] is the canonical persisted form of one run's full
//! mid-run state: named *planes* (slab, buffers, scheduler queue, driver
//! scalars, report, spans, …), each a list of word *chunks*. Chunk
//! boundaries follow the state's natural granularity — one chunk per
//! resident trajectory, per buffered experience, per pending event — so a
//! mutation dirties only the chunks it touched. Planes without natural
//! boundaries (scalar blocks, append-only streams) are paginated into
//! fixed [`PAGE_WORDS`] chunks, where appends dirty only the tail page.
//!
//! A [`DeltaStore`] persists chunks content-addressed by their FNV-1a key:
//! committing an image writes only chunks whose key is not already stored
//! and records a [`Manifest`] — the ordered chunk-key lists per plane, a
//! whole-state fingerprint, and a link to the parent manifest. The delta
//! cost of a cadence point is therefore the bytes of its *new* chunks plus
//! the manifest, not the whole state; [`CommitStats`] accounts both so the
//! bench can gate on the ratio.
//!
//! Restore runs the protocol in reverse: [`DeltaStore::reconstruct`]
//! reassembles the image from a manifest's chunk keys,
//! [`DeltaStore::verify`] additionally proves the reassembled image hashes
//! to the manifest's recorded fingerprint, and
//! [`Recoverable::resume_verified`](crate::recovery::Recoverable::resume_verified)
//! refuses to resume unless the in-memory snapshot re-encodes to that same
//! fingerprint — a full chunk-integrity + state-identity check before any
//! event replays.

use crate::recovery::fnv1a;
use crate::report::RunReport;
use laminar_sim::{Time, TraceSpan};
use std::collections::HashMap;

/// Words per page for planes encoded as flat streams. 32 words = 256 bytes:
/// small enough that a point mutation dirties little, large enough that the
/// manifest (one key per page) stays a small fraction of the data.
pub const PAGE_WORDS: usize = 32;

/// Trace spans per chunk in span planes. Spans are append-only during a
/// run, so full batches never re-encode and only the tail batch is dirty.
pub const SPAN_BATCH: usize = 8;

/// One named plane of a state image: an ordered list of word chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatePlane {
    /// Stable plane name (part of the fingerprint domain).
    pub name: &'static str,
    /// Ordered chunks; concatenated they form the plane's word stream.
    pub chunks: Vec<Vec<u64>>,
}

impl StatePlane {
    /// An empty plane.
    pub fn new(name: &'static str) -> Self {
        StatePlane {
            name,
            chunks: Vec::new(),
        }
    }

    /// Appends one natural-granularity chunk.
    pub fn push_chunk(&mut self, words: Vec<u64>) {
        self.chunks.push(words);
    }

    /// Splits a flat word stream into [`PAGE_WORDS`]-sized page chunks.
    pub fn extend_paged(&mut self, words: &[u64]) {
        for page in words.chunks(PAGE_WORDS) {
            self.chunks.push(page.to_vec());
        }
    }

    /// Total words across all chunks.
    pub fn len_words(&self) -> u64 {
        self.chunks.iter().map(|c| c.len() as u64).sum()
    }
}

/// The canonical full-state encoding of one run at one instant: every
/// mutable plane, in a fixed order, as word chunks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateImage {
    planes: Vec<StatePlane>,
}

impl StateImage {
    /// An empty image.
    pub fn new() -> Self {
        StateImage::default()
    }

    /// Appends a plane. Plane order is part of the canonical form: the
    /// same state must always encode planes in the same order.
    pub fn push_plane(&mut self, plane: StatePlane) {
        self.planes.push(plane);
    }

    /// The planes in canonical order.
    pub fn planes(&self) -> &[StatePlane] {
        &self.planes
    }

    /// Total encoded bytes (8 per word) — the whole-state cost a full
    /// snapshot would persist.
    pub fn total_bytes(&self) -> u64 {
        8 * self.planes.iter().map(|p| p.len_words()).sum::<u64>()
    }

    /// The whole-state fingerprint: FNV-1a over every plane's name hash,
    /// chunk structure, and words. Two states are delta-equivalent iff
    /// their images fingerprint equal.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for plane in &self.planes {
            fold(fnv1a_bytes(plane.name.as_bytes()));
            fold(plane.chunks.len() as u64);
            for chunk in &plane.chunks {
                fold(chunk.len() as u64);
                for &w in chunk {
                    fold(w);
                }
            }
        }
        h
    }
}

/// FNV-1a over raw bytes (plane names, string-valued state).
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Content-address of one chunk: FNV-1a over its length then words, so a
/// prefix and its extension never collide trivially.
pub fn chunk_key(words: &[u64]) -> u64 {
    fnv1a(std::iter::once(words.len() as u64).chain(words.iter().copied()))
}

/// One plane's entry in a manifest: the ordered chunk keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaneManifest {
    /// Plane name.
    pub name: String,
    /// Total words the keys cover.
    pub len_words: u64,
    /// Chunk keys in plane order.
    pub keys: Vec<u64>,
}

/// One committed checkpoint: per-plane chunk keys, the whole-state
/// fingerprint, and the parent link forming the manifest chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Manifest id (FNV-1a over the manifest's own contents).
    pub id: u64,
    /// 0-based commit index in this store.
    pub index: usize,
    /// Cadence instant the image was captured at.
    pub at: Time,
    /// Parent manifest id (`None` for the chain root).
    pub parent: Option<u64>,
    /// Planes in canonical order.
    pub planes: Vec<PlaneManifest>,
    /// Whole-state fingerprint of the committed image.
    pub fingerprint: u64,
}

impl Manifest {
    /// Serialized manifest size in bytes: 8 per chunk key plus a small
    /// per-plane and per-manifest header. Counted into the delta cost —
    /// a checkpoint writes its manifest as well as its new chunks.
    pub fn encoded_bytes(&self) -> u64 {
        let keys: u64 = self.planes.iter().map(|p| p.keys.len() as u64).sum();
        8 * (keys + 2 * self.planes.len() as u64 + 5)
    }
}

/// Cost accounting for one [`DeltaStore::commit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Chunks referenced by the manifest.
    pub chunks_total: usize,
    /// Chunks newly written by this commit.
    pub chunks_new: usize,
    /// Chunks deduplicated against already-stored content.
    pub chunks_reused: usize,
    /// Bytes this commit actually persisted: new chunk words plus the
    /// manifest itself.
    pub delta_bytes: u64,
    /// Bytes a whole-state snapshot of the same image would persist.
    pub whole_bytes: u64,
}

/// Content-addressed chunk store plus the manifest chain.
#[derive(Debug, Clone, Default)]
pub struct DeltaStore {
    chunks: HashMap<u64, Vec<u64>>,
    manifests: Vec<Manifest>,
}

impl DeltaStore {
    /// An empty store.
    pub fn new() -> Self {
        DeltaStore::default()
    }

    /// Commits `image` at cadence instant `at`: writes chunks not already
    /// stored, appends a manifest linked to the previous commit, and
    /// returns the manifest id with the commit's cost accounting.
    pub fn commit(&mut self, at: Time, image: &StateImage) -> (u64, CommitStats) {
        let parent = self.manifests.last().map(|m| m.id);
        let mut stats = CommitStats {
            whole_bytes: image.total_bytes(),
            ..CommitStats::default()
        };
        let mut planes = Vec::with_capacity(image.planes().len());
        for plane in image.planes() {
            let mut keys = Vec::with_capacity(plane.chunks.len());
            for chunk in &plane.chunks {
                let key = chunk_key(chunk);
                stats.chunks_total += 1;
                if let std::collections::hash_map::Entry::Vacant(e) = self.chunks.entry(key) {
                    stats.chunks_new += 1;
                    stats.delta_bytes += 8 * chunk.len() as u64;
                    e.insert(chunk.clone());
                } else {
                    stats.chunks_reused += 1;
                }
                keys.push(key);
            }
            planes.push(PlaneManifest {
                name: plane.name.to_string(),
                len_words: plane.len_words(),
                keys,
            });
        }
        let fingerprint = image.fingerprint();
        let mut id_words = vec![
            self.manifests.len() as u64,
            at.as_nanos(),
            parent.unwrap_or(0),
            fingerprint,
        ];
        for p in &planes {
            id_words.push(fnv1a_bytes(p.name.as_bytes()));
            id_words.push(p.len_words);
            id_words.extend(p.keys.iter().copied());
        }
        let id = fnv1a(id_words);
        let manifest = Manifest {
            id,
            index: self.manifests.len(),
            at,
            parent,
            planes,
            fingerprint,
        };
        stats.delta_bytes += manifest.encoded_bytes();
        self.manifests.push(manifest);
        (id, stats)
    }

    /// Looks up a manifest by id.
    pub fn manifest(&self, id: u64) -> Option<&Manifest> {
        self.manifests.iter().find(|m| m.id == id)
    }

    /// The newest manifest, if any commit happened.
    pub fn latest(&self) -> Option<&Manifest> {
        self.manifests.last()
    }

    /// All manifests, oldest first.
    pub fn manifests(&self) -> &[Manifest] {
        &self.manifests
    }

    /// Number of distinct chunks stored.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total bytes of stored chunk content.
    pub fn stored_bytes(&self) -> u64 {
        8 * self.chunks.values().map(|c| c.len() as u64).sum::<u64>()
    }

    /// Reassembles the full state image a manifest describes. Fails if any
    /// referenced chunk is missing from the store.
    pub fn reconstruct(&self, manifest: &Manifest) -> Result<StateImage, String> {
        let mut image = StateImage::new();
        for plane in &manifest.planes {
            let mut chunks = Vec::with_capacity(plane.keys.len());
            for &key in &plane.keys {
                let chunk = self.chunks.get(&key).ok_or_else(|| {
                    format!(
                        "manifest {:016x}: plane `{}` references missing chunk {key:016x}",
                        manifest.id, plane.name
                    )
                })?;
                chunks.push(chunk.clone());
            }
            // Plane names in images are &'static str; reconstruction leaks
            // nothing because every plane name a manifest can hold was
            // interned by an encoder at commit time.
            let name: &'static str = Box::leak(plane.name.clone().into_boxed_str());
            image.push_plane(StatePlane { name, chunks });
        }
        Ok(image)
    }

    /// Reconstructs and verifies: the reassembled image must hash to the
    /// manifest's recorded whole-state fingerprint. This is the integrity
    /// gate resume runs before trusting any checkpoint.
    pub fn verify(&self, manifest: &Manifest) -> Result<StateImage, String> {
        let image = self.reconstruct(manifest)?;
        let got = image.fingerprint();
        if got != manifest.fingerprint {
            return Err(format!(
                "manifest {:016x}: reconstructed fingerprint {got:016x} != recorded {:016x}",
                manifest.id, manifest.fingerprint
            ));
        }
        Ok(image)
    }

    /// Walks the parent chain from `id` back to the root, returning the
    /// chain length. Fails if a parent link dangles — a broken chain means
    /// earlier checkpoints were lost or the store was corrupted.
    pub fn verify_chain(&self, id: u64) -> Result<usize, String> {
        let mut len = 0usize;
        let mut cur = Some(id);
        while let Some(c) = cur {
            let m = self
                .manifest(c)
                .ok_or_else(|| format!("manifest chain broken: {c:016x} not in store"))?;
            len += 1;
            cur = m.parent;
            if len > self.manifests.len() {
                return Err("manifest chain has a cycle".to_string());
            }
        }
        Ok(len)
    }
}

/// Incremental word-stream encoder helpers shared by every system's
/// `encode_state`: push typed values onto a word vector in a fixed order.
#[derive(Debug, Default)]
pub struct WordEnc {
    words: Vec<u64>,
}

impl WordEnc {
    /// An empty encoder.
    pub fn new() -> Self {
        WordEnc::default()
    }

    /// Raw word.
    pub fn u(&mut self, w: u64) -> &mut Self {
        self.words.push(w);
        self
    }

    /// Usize as word.
    pub fn z(&mut self, w: usize) -> &mut Self {
        self.words.push(w as u64);
        self
    }

    /// Float as IEEE bits.
    pub fn f(&mut self, x: f64) -> &mut Self {
        self.words.push(x.to_bits());
        self
    }

    /// Bool as 0/1.
    pub fn b(&mut self, x: bool) -> &mut Self {
        self.words.push(x as u64);
        self
    }

    /// Virtual time as nanoseconds.
    pub fn t(&mut self, t: Time) -> &mut Self {
        self.words.push(t.as_nanos());
        self
    }

    /// Option<Time> as (present, nanos).
    pub fn ot(&mut self, t: Option<Time>) -> &mut Self {
        self.words.push(t.is_some() as u64);
        self.words.push(t.map_or(0, |t| t.as_nanos()));
        self
    }

    /// The accumulated words.
    pub fn take(self) -> Vec<u64> {
        self.words
    }

    /// Borrow the accumulated words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Encodes one trace span as 6 words (stable across planes and systems).
pub fn encode_span(s: &TraceSpan, out: &mut Vec<u64>) {
    out.push(span_kind_word(s));
    out.push(s.start.as_nanos());
    out.push(s.end.as_nanos());
    out.push(s.replica.map_or(0, |r| r as u64 + 1));
    out.push(s.version);
    out.push(s.tokens);
}

fn span_kind_word(s: &TraceSpan) -> u64 {
    use laminar_sim::SpanKind::*;
    match s.kind {
        Prefill => 0,
        DecodeStep => 1,
        EnvCall => 2,
        WeightSync => 3,
        TrainStep => 4,
        Stall => 5,
        Repack => 6,
        Failure => 7,
        Degraded => 8,
        Recovered => 9,
    }
}

/// Encodes a span slice as a batched plane: [`SPAN_BATCH`] spans per chunk.
/// Append-only span streams therefore dirty only their final chunk.
pub fn encode_span_plane(name: &'static str, spans: &[TraceSpan]) -> StatePlane {
    let mut plane = StatePlane::new(name);
    for batch in spans.chunks(SPAN_BATCH) {
        plane.push_chunk(encode_span_batch(batch));
    }
    plane
}

/// Encodes one span batch as a single chunk (shared by the full and the
/// incremental encoders so chunk boundaries — and hence keys — agree).
pub fn encode_span_batch(batch: &[TraceSpan]) -> Vec<u64> {
    let mut words = Vec::with_capacity(6 * batch.len());
    for s in batch {
        encode_span(s, &mut words);
    }
    words
}

/// Encodes a full run report (every vector, series, and scalar) as a
/// sectioned plane: one scalar head chunk carrying every section length,
/// then each report vector as its own independently paged stream. Report
/// vectors are append-only during a run, and separate paging means an
/// append to one vector never shifts another's pages — per cadence point
/// only each touched section's tail page re-keys.
pub fn encode_report_plane(name: &'static str, r: &RunReport) -> StatePlane {
    let mut plane = StatePlane::new(name);
    let head = vec![
        fnv1a_bytes(r.system.as_bytes()),
        r.throughput.to_bits(),
        r.generation_fraction.to_bits(),
        r.mean_kv_utilization.to_bits(),
        r.repack_events,
        r.repack_released,
        r.repack_overhead_secs.to_bits(),
        // Section lengths frame the paged streams that follow.
        r.iteration_secs.len() as u64,
        r.iteration_tokens.len() as u64,
        r.consumed.len() as u64,
        r.rollout_waits.len() as u64,
        r.latencies.len() as u64,
        r.gen_series.len() as u64,
        r.train_series.len() as u64,
        r.staleness_by_finish.len() as u64,
    ];
    plane.push_chunk(head);
    let mut sec: Vec<u64> = Vec::new();
    for vec in [
        &r.iteration_secs,
        &r.iteration_tokens,
        &r.rollout_waits,
        &r.latencies,
    ] {
        sec.clear();
        sec.extend(vec.iter().map(|x| x.to_bits()));
        plane.extend_paged(&sec);
    }
    sec.clear();
    for c in &r.consumed {
        sec.push(c.staleness);
        sec.push(c.mixed_version as u64);
    }
    plane.extend_paged(&sec);
    for series in [&r.gen_series, &r.train_series] {
        sec.clear();
        for &(t, v) in series.points() {
            sec.push(t.as_nanos());
            sec.push(v.to_bits());
        }
        plane.extend_paged(&sec);
    }
    sec.clear();
    for &(frac, s) in &r.staleness_by_finish {
        sec.push(frac.to_bits());
        sec.push(s);
    }
    plane.extend_paged(&sec);
    plane
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(chunks: Vec<Vec<u64>>) -> StateImage {
        let mut img = StateImage::new();
        let mut plane = StatePlane::new("test");
        for c in chunks {
            plane.push_chunk(c);
        }
        img.push_plane(plane);
        img
    }

    #[test]
    fn commit_dedups_unchanged_chunks() {
        let mut store = DeltaStore::new();
        let a = image(vec![vec![1, 2, 3], vec![4, 5, 6], vec![7]]);
        let (_, s1) = store.commit(Time::from_secs(1), &a);
        assert_eq!(s1.chunks_new, 3);
        assert_eq!(s1.chunks_reused, 0);
        // One chunk mutated, two unchanged.
        let b = image(vec![vec![1, 2, 3], vec![40, 5, 6], vec![7]]);
        let (_, s2) = store.commit(Time::from_secs(2), &b);
        assert_eq!(s2.chunks_new, 1);
        assert_eq!(s2.chunks_reused, 2);
        // Only the mutated chunk's bytes were persisted (plus the manifest).
        assert!(s2.delta_bytes < s1.delta_bytes);
    }

    #[test]
    fn reconstruct_verifies_fingerprint() {
        let mut store = DeltaStore::new();
        let img = image(vec![vec![9, 9], vec![1]]);
        let (id, _) = store.commit(Time::from_secs(1), &img);
        let m = store.manifest(id).expect("manifest").clone();
        let back = store.verify(&m).expect("verify");
        assert_eq!(back.fingerprint(), img.fingerprint());
        assert_eq!(back.total_bytes(), img.total_bytes());
    }

    #[test]
    fn tampered_manifest_fails_verify() {
        let mut store = DeltaStore::new();
        let (id, _) = store.commit(Time::from_secs(1), &image(vec![vec![1, 2]]));
        let mut m = store.manifest(id).expect("manifest").clone();
        m.fingerprint ^= 1;
        assert!(store.verify(&m).is_err());
        m.fingerprint ^= 1;
        m.planes[0].keys[0] ^= 1;
        assert!(store.reconstruct(&m).is_err());
    }

    #[test]
    fn manifest_chain_links_parents() {
        let mut store = DeltaStore::new();
        let (a, _) = store.commit(Time::from_secs(1), &image(vec![vec![1]]));
        let (b, _) = store.commit(Time::from_secs(2), &image(vec![vec![1], vec![2]]));
        let (c, _) = store.commit(Time::from_secs(3), &image(vec![vec![1], vec![2], vec![3]]));
        assert_eq!(store.manifest(b).unwrap().parent, Some(a));
        assert_eq!(store.manifest(c).unwrap().parent, Some(b));
        assert_eq!(store.verify_chain(c).expect("chain"), 3);
    }

    #[test]
    fn chunk_key_separates_length_extensions() {
        assert_ne!(chunk_key(&[0]), chunk_key(&[0, 0]));
        assert_ne!(chunk_key(&[]), chunk_key(&[0]));
    }

    #[test]
    fn paged_planes_dirty_only_the_tail_on_append() {
        let mut store = DeltaStore::new();
        let stream: Vec<u64> = (0..200).collect();
        let mut p1 = StatePlane::new("paged");
        p1.extend_paged(&stream);
        let mut img1 = StateImage::new();
        img1.push_plane(p1);
        store.commit(Time::from_secs(1), &img1);

        let longer: Vec<u64> = (0..230).collect();
        let mut p2 = StatePlane::new("paged");
        p2.extend_paged(&longer);
        let mut img2 = StateImage::new();
        img2.push_plane(p2);
        let (_, s) = store.commit(Time::from_secs(2), &img2);
        // 200 = 6 full pages + tail of 8; append keeps the 6 full pages.
        assert_eq!(s.chunks_reused, 6, "{s:?}");
        assert_eq!(s.chunks_new, 2, "{s:?}");
    }

    #[test]
    fn span_planes_batch_stably() {
        use laminar_sim::{SpanKind, Time as T};
        let spans: Vec<TraceSpan> = (0..20)
            .map(|i| {
                TraceSpan::new(
                    SpanKind::DecodeStep,
                    T::from_secs(i),
                    T::from_secs(i + 1),
                    Some(i as usize % 3),
                    i,
                )
            })
            .collect();
        let p = encode_span_plane("spans", &spans);
        assert_eq!(p.chunks.len(), 3); // 8 + 8 + 4
        assert_eq!(p.len_words(), 6 * 20);
        // Appending spans keeps the full batches' chunk keys.
        let mut more = spans.clone();
        more.push(spans[0]);
        let p2 = encode_span_plane("spans", &more);
        assert_eq!(p.chunks[0], p2.chunks[0]);
        assert_eq!(p.chunks[1], p2.chunks[1]);
        assert_ne!(p.chunks[2], p2.chunks[2]);
    }
}
