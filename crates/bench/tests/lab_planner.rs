//! Lab determinism contract: spec expansion is order-stable, trial
//! execution is byte-identical for every `--jobs` value, and repeats of
//! the same (variant, seed) pair reproduce the same row.

use laminar_bench::lab::{plan, run_lab, write_rows_jsonl};
use laminar_bench::{LabSpec, Opts};

/// The committed CI smoke spec, so the integration tests exercise the
/// exact artifact the lab-smoke CI job runs.
const SMOKE: &str = include_str!("../../../specs/smoke.toml");

/// A tiny two-repeat study for the repeat-determinism contract.
const REPEATS: &str = r#"
name = "repeat-check"
seeds = [3, 9]
repeats = 2

[variant.verl]
system = "verl"
workload = "single-turn"
gpus = 16
iterations = 2

[variant.laminar]
system = "laminar"
workload = "single-turn"
gpus = 16
iterations = 2
chaos_events = 2
chaos_horizon_secs = 60.0
"#;

#[test]
fn planner_expansion_is_order_stable() {
    let spec = LabSpec::parse(REPEATS).expect("parse");
    let trials = plan(&spec);
    // variants (declaration order) × seeds (list order) × repeats, nested
    // in exactly that order, indices contiguous.
    let expected: Vec<(&str, u64, u32)> = vec![
        ("verl", 3, 0),
        ("verl", 3, 1),
        ("verl", 9, 0),
        ("verl", 9, 1),
        ("laminar", 3, 0),
        ("laminar", 3, 1),
        ("laminar", 9, 0),
        ("laminar", 9, 1),
    ];
    assert_eq!(trials.len(), expected.len());
    for (i, (t, (variant, seed, repeat))) in trials.iter().zip(&expected).enumerate() {
        assert_eq!(t.index, i);
        assert_eq!(spec.variants[t.variant].name, *variant);
        assert_eq!(t.seed, *seed);
        assert_eq!(t.repeat, *repeat);
    }
    // Re-planning the same spec reproduces the same list.
    assert_eq!(plan(&spec), trials);
}

#[test]
fn rows_are_byte_identical_across_job_counts() {
    let spec = LabSpec::parse(SMOKE).expect("parse smoke spec");
    let jsonl = |jobs: usize| {
        let opts = Opts {
            jobs,
            ..Opts::default()
        };
        write_rows_jsonl(&spec.name, &run_lab(&spec, &opts))
    };
    let serial = jsonl(1);
    let parallel = jsonl(8);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "rows JSONL differs between --jobs 1 and 8"
    );
}

#[test]
fn repeated_variant_seed_pairs_reproduce_identical_rows() {
    let spec = LabSpec::parse(REPEATS).expect("parse");
    let opts = Opts {
        jobs: 4,
        ..Opts::default()
    };
    let rows = run_lab(&spec, &opts);
    assert_eq!(rows.len(), 8);
    for pair in rows.chunks(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert_eq!((&a.variant, a.seed), (&b.variant, b.seed));
        assert_eq!((a.repeat, b.repeat), (0, 1));
        assert_eq!(
            a.metrics, b.metrics,
            "repeat of {} seed {}",
            a.variant, a.seed
        );
        assert_eq!(a.note, b.note);
    }
}
