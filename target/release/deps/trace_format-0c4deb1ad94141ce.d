/root/repo/target/release/deps/trace_format-0c4deb1ad94141ce.d: crates/bench/tests/trace_format.rs

/root/repo/target/release/deps/trace_format-0c4deb1ad94141ce: crates/bench/tests/trace_format.rs

crates/bench/tests/trace_format.rs:
