//! Weight-synchronization cost models for the baseline systems.
//!
//! The baselines use GPU-direct NCCL broadcast at a global synchronization
//! point (§2.3, §8.3): every rollout blocks until the transfer completes,
//! and the coordination cost grows with participant count. Colocated verl
//! additionally pays a HybridEngine reshard every time the GPUs flip between
//! training and generation.

use crate::gpu::MachineSpec;
use crate::model::ModelSpec;
use laminar_sim::Duration;

/// NCCL-style global broadcast model.
#[derive(Debug, Clone)]
pub struct CollectiveModel {
    /// Machine fabric parameters.
    pub machine: MachineSpec,
    /// Fixed group coordination cost per participant doubling, seconds.
    /// Covers rendezvous, communicator (re)build, and kernel scheduling
    /// contention with compute streams (§2.4 challenge 1).
    pub coord_per_doubling: f64,
    /// Base coordination cost, seconds.
    pub coord_base: f64,
}

impl CollectiveModel {
    /// Standard calibration for the H800 fabric.
    pub fn new(machine: MachineSpec) -> Self {
        CollectiveModel {
            machine,
            coord_per_doubling: 0.35,
            coord_base: 0.4,
        }
    }

    /// Seconds for a global NCCL weight broadcast of `model` from the actor
    /// group to `rollout_gpus` rollout GPUs. Both sides block for the full
    /// duration.
    ///
    /// The transfer moves each weight shard once over the inter-machine
    /// fabric; the coordination term grows logarithmically with the
    /// participant count, which is what makes global sync increasingly
    /// expensive at scale (Figure 14).
    pub fn nccl_broadcast_secs(&self, model: &ModelSpec, rollout_gpus: usize) -> f64 {
        let participants = (rollout_gpus.max(1)) as f64;
        let coord = self.coord_base + self.coord_per_doubling * participants.log2().max(0.0);
        let transfer = model.weight_bytes() / self.machine.rdma.bandwidth;
        coord + transfer
    }

    /// [`Self::nccl_broadcast_secs`] as a duration.
    pub fn nccl_broadcast_time(&self, model: &ModelSpec, rollout_gpus: usize) -> Duration {
        Duration::from_secs_f64(self.nccl_broadcast_secs(model, rollout_gpus))
    }

    /// Seconds for a rollout replica (TP group) to load its weight shards
    /// from its colocated relay worker over PCIe, all GPUs in parallel.
    /// This is Laminar's best-case pull path (§8.3).
    pub fn relay_pull_secs(&self, model: &ModelSpec, tp: usize) -> f64 {
        let shard = model.weight_bytes() / tp.max(1) as f64;
        self.machine.pcie.transfer_secs(shard)
    }

    /// [`Self::relay_pull_secs`] as a duration.
    pub fn relay_pull_time(&self, model: &ModelSpec, tp: usize) -> Duration {
        Duration::from_secs_f64(self.relay_pull_secs(model, tp))
    }

    /// Seconds for the actor to push its updated weights to the master relay
    /// (the only communication on the actor's critical path in Laminar;
    /// 0.64 s for 32B and 1.40 s for 72B in §8.3).
    pub fn actor_push_secs(&self, model: &ModelSpec) -> f64 {
        // Each actor GPU DMA-copies its shard to pinned host memory over
        // PCIe and the master relay assembles; the shards move in parallel,
        // so the wall time is one full-model transit of the aggregate
        // host-link bandwidth of one machine.
        let agg = self.machine.pcie.bandwidth * self.machine.gpus as f64 * 0.5;
        self.machine.pcie.startup + model.weight_bytes() / agg
    }

    /// [`Self::actor_push_secs`] as a duration.
    pub fn actor_push_time(&self, model: &ModelSpec) -> Duration {
        Duration::from_secs_f64(self.actor_push_secs(model))
    }

    /// Storage-system alternative from §4.1 (NFS/Redis style): serialize,
    /// ship over TCP, deserialize — shown there to cost tens of seconds per
    /// 4 GB shard. Kept for the design-consideration comparison.
    pub fn storage_system_secs(&self, model: &ModelSpec, shards: usize) -> f64 {
        let shard_bytes = model.weight_bytes() / shards.max(1) as f64;
        // ~8 s serialization per 4 GB shard (paper's profiling) + TCP both ways.
        let serialize = 8.0 * shard_bytes / 4e9;
        let ship = 2.0 * self.machine.tcp.transfer_secs(shard_bytes);
        serialize + ship
    }
}

/// HybridEngine context-switch model for colocated synchronous verl.
#[derive(Debug, Clone)]
pub struct ReshardModel {
    /// Machine fabric parameters.
    pub machine: MachineSpec,
    /// Fixed engine wake/sleep cost per switch, seconds (KVCache release and
    /// re-init, CUDA graph capture).
    pub fixed: f64,
}

impl ReshardModel {
    /// Standard calibration.
    pub fn new(machine: MachineSpec) -> Self {
        ReshardModel {
            machine,
            fixed: 2.0,
        }
    }

    /// Seconds to flip colocated GPUs between training and generation
    /// layouts (all-gather the weights into the serving sharding).
    pub fn switch_secs(&self, model: &ModelSpec) -> f64 {
        self.fixed + model.weight_bytes() / self.machine.nvlink.bandwidth
    }

    /// [`Self::switch_secs`] as a duration.
    pub fn switch_time(&self, model: &ModelSpec) -> Duration {
        Duration::from_secs_f64(self.switch_secs(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::MachineSpec;

    fn coll() -> CollectiveModel {
        CollectiveModel::new(MachineSpec::h800_server())
    }

    #[test]
    fn nccl_grows_with_scale() {
        let c = coll();
        let m = ModelSpec::qwen_32b();
        let t64 = c.nccl_broadcast_secs(&m, 64);
        let t1024 = c.nccl_broadcast_secs(&m, 1024);
        assert!(t1024 > t64, "global sync must get worse at scale");
    }

    #[test]
    fn relay_pull_is_much_cheaper_than_nccl() {
        let c = coll();
        let m = ModelSpec::qwen_32b();
        let pull = c.relay_pull_secs(&m, 4);
        let nccl = c.nccl_broadcast_secs(&m, 512);
        assert!(pull < nccl * 0.5, "pull={pull} nccl={nccl}");
    }

    #[test]
    fn actor_push_matches_paper_scale() {
        let c = coll();
        // §8.3: actor stalls 0.64s (32B) and 1.40s (72B).
        let t32 = c.actor_push_secs(&ModelSpec::qwen_32b());
        let t72 = c.actor_push_secs(&ModelSpec::qwen_72b());
        assert!(t32 > 0.2 && t32 < 1.2, "32B push {t32}s");
        assert!(t72 > 0.5 && t72 < 2.5, "72B push {t72}s");
        assert!(t72 > t32);
    }

    #[test]
    fn storage_system_is_impractical() {
        let c = coll();
        // §4.1: serializing one 4GB shard ~8s, TCP adds 10-20s.
        let t = c.storage_system_secs(&ModelSpec::qwen_32b(), 16);
        assert!(t > 10.0, "storage path must be tens of seconds, got {t}");
        let relay = c.relay_pull_secs(&ModelSpec::qwen_32b(), 4);
        assert!(t > relay * 10.0);
    }

    #[test]
    fn reshard_costs_seconds() {
        let r = ReshardModel::new(MachineSpec::h800_server());
        let t = r.switch_secs(&ModelSpec::qwen_32b());
        assert!(t > 2.0 && t < 10.0, "switch {t}s");
    }
}
