/root/repo/target/debug/deps/laminar_runtime-693173c1558b6dea.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/liblaminar_runtime-693173c1558b6dea.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/config.rs:
crates/runtime/src/report.rs:
crates/runtime/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
