/root/repo/target/debug/deps/laminar-dacbabab6cf05435.d: src/lib.rs

/root/repo/target/debug/deps/liblaminar-dacbabab6cf05435.rlib: src/lib.rs

/root/repo/target/debug/deps/liblaminar-dacbabab6cf05435.rmeta: src/lib.rs

src/lib.rs:
