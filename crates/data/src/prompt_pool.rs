//! The prompt pool: queue of trajectory assignments awaiting generation.

use laminar_workload::TrajectorySpec;
use std::collections::VecDeque;

/// FIFO pool of trajectory specs waiting for a rollout.
///
/// Rollouts pull work; trajectories lost to failures are re-queued at the
/// *front* so interrupted work resumes before fresh prompts are started
/// (§3.3 redirects interrupted trajectories to healthy rollouts first).
#[derive(Debug, Clone, Default)]
pub struct PromptPool {
    queue: VecDeque<TrajectorySpec>,
    pulled: u64,
    requeued: u64,
}

impl PromptPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a batch of fresh assignments.
    pub fn push_batch(&mut self, specs: impl IntoIterator<Item = TrajectorySpec>) {
        self.queue.extend(specs);
    }

    /// Pulls the next assignment, if any.
    pub fn pull(&mut self) -> Option<TrajectorySpec> {
        let s = self.queue.pop_front();
        if s.is_some() {
            self.pulled += 1;
        }
        s
    }

    /// Pulls up to `n` assignments.
    pub fn pull_up_to(&mut self, n: usize) -> Vec<TrajectorySpec> {
        let mut out = Vec::with_capacity(n.min(self.queue.len()));
        for _ in 0..n {
            match self.pull() {
                Some(s) => out.push(s),
                None => break,
            }
        }
        out
    }

    /// Returns an interrupted assignment to the head of the queue.
    pub fn requeue(&mut self, spec: TrajectorySpec) {
        self.requeued += 1;
        self.queue.push_front(spec);
    }

    /// Assignments currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total assignments handed out (including re-pulled requeues).
    pub fn pulled(&self) -> u64 {
        self.pulled
    }

    /// Total requeue events (failure recoveries).
    pub fn requeued(&self) -> u64 {
        self.requeued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_workload::{Checkpoint, WorkloadGenerator};

    fn specs(n: u64) -> Vec<TrajectorySpec> {
        let w = WorkloadGenerator::single_turn(1, Checkpoint::Math7B);
        (0..n)
            .map(|i| w.trajectory(i, i / 16, (i % 16) as usize, 1.0))
            .collect()
    }

    #[test]
    fn fifo_order() {
        let mut p = PromptPool::new();
        p.push_batch(specs(5));
        let ids: Vec<u64> = std::iter::from_fn(|| p.pull()).map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(p.is_empty());
        assert_eq!(p.pulled(), 5);
    }

    #[test]
    fn requeue_goes_to_front() {
        let mut p = PromptPool::new();
        p.push_batch(specs(3));
        let first = p.pull().unwrap();
        let second = p.pull().unwrap();
        p.requeue(second.clone());
        p.requeue(first.clone());
        assert_eq!(p.pull().unwrap().id, first.id);
        assert_eq!(p.pull().unwrap().id, second.id);
        assert_eq!(p.requeued(), 2);
    }

    #[test]
    fn pull_up_to_respects_bounds() {
        let mut p = PromptPool::new();
        p.push_batch(specs(4));
        assert_eq!(p.pull_up_to(2).len(), 2);
        assert_eq!(p.pull_up_to(10).len(), 2);
        assert!(p.pull_up_to(3).is_empty());
    }
}
