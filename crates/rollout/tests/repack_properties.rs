//! Property-style tests of the Best-Fit repack planner (Algorithm 1)
//! against randomized replica-load snapshots.
//!
//! Invariants checked on every generated snapshot:
//!
//! 1. no destination is ever packed past the KVCache threshold `C_max` or
//!    the roofline batch bound `B`;
//! 2. every move targets the *densest* destination that was valid when the
//!    move was planned (the Best-Fit rule), never a fuller-than-allowed or
//!    invalid replica;
//! 3. when no replica is in its ramp-down phase the plan is a no-op.

use laminar_rollout::{plan_repack, ReplicaLoad};
use laminar_sim::SimRng;

const CASES: u64 = 64;

fn random_loads(rng: &mut SimRng, c_max: f64) -> Vec<ReplicaLoad> {
    let n = rng.range_u64(1, 12) as usize;
    (0..n)
        .map(|replica| {
            let kv_used = rng.range_f64(0.0, c_max * 1.2);
            // Mix ramp-down (kv_prev > kv_used) and ramp-up replicas.
            let kv_prev = if rng.chance(0.7) {
                kv_used + rng.range_f64(0.1, 50.0)
            } else {
                kv_used * rng.range_f64(0.0, 1.0)
            };
            ReplicaLoad {
                replica,
                kv_used,
                kv_reserved: kv_used,
                kv_prev,
                n_reqs: rng.below(20) as usize,
                weight_version: 0,
            }
        })
        .collect()
}

/// Replays the plan move-by-move, accumulating assigned load per
/// destination, and asserts the Algorithm 1 invariants at each step.
fn check_plan(replicas: &[ReplicaLoad], c_max: f64, b: usize, case: u64) {
    let plan = plan_repack(replicas, c_max, b);
    let by_id = |id: usize| {
        replicas
            .iter()
            .find(|r| r.replica == id)
            .expect("known replica")
    };
    let mut assigned_kv = vec![0.0f64; replicas.len()];
    let mut assigned_reqs = vec![0usize; replicas.len()];
    let released = plan.released();
    for (step, &(s, d)) in plan.moves.iter().enumerate() {
        assert_ne!(s, d, "case {case} step {step}: self-move");
        let src = by_id(s);
        let dst = by_id(d);
        // Released sources never reappear, as source or destination.
        assert!(
            !plan.moves[..step]
                .iter()
                .any(|&(ps, pd)| ps == s || pd == s),
            "case {case} step {step}: source {s} was already used"
        );
        assert!(
            !released.contains(&d),
            "case {case} step {step}: destination {d} is released"
        );
        // Both ends must be ramp-down candidates.
        for r in [src, dst] {
            assert!(
                r.n_reqs > 0 && r.n_reqs < b,
                "case {case} step {step}: {} not a candidate",
                r.replica
            );
            assert!(
                r.kv_used < c_max.min(r.kv_prev),
                "case {case} step {step}: {} not ramping down",
                r.replica
            );
        }
        // Invariant 1: the destination never overflows C_max or B, even
        // with everything previously stacked on it.
        let kv_after = dst.kv_used + assigned_kv[d] + src.kv_used;
        let reqs_after = dst.n_reqs + assigned_reqs[d] + src.n_reqs;
        assert!(
            kv_after <= c_max + 1e-9,
            "case {case} step {step}: destination {d} overflows C_max ({kv_after} > {c_max})"
        );
        assert!(
            reqs_after <= b,
            "case {case} step {step}: destination {d} overflows B ({reqs_after} > {b})"
        );
        // Invariant 2 (Best-Fit): no other valid destination was denser at
        // this point in the plan.
        let chosen_density = dst.kv_used + assigned_kv[d];
        for other in replicas {
            let o = other.replica;
            if o == s || o == d || released[..step].contains(&o) {
                continue;
            }
            let candidate = other.n_reqs > 0
                && other.n_reqs < b
                && other.kv_used < c_max.min(other.kv_prev)
                && !plan.moves[..step].iter().any(|&(ps, _)| ps == o);
            if !candidate {
                continue;
            }
            let o_kv = other.kv_used + assigned_kv[o];
            let o_reqs = other.n_reqs + assigned_reqs[o];
            let fits = o_kv + src.kv_used <= c_max && o_reqs + src.n_reqs <= b;
            if fits {
                assert!(o_kv <= chosen_density + 1e-9,
                    "case {case} step {step}: {o} ({o_kv}) denser than chosen {d} ({chosen_density})");
            }
        }
        assigned_kv[d] += src.kv_used;
        assigned_reqs[d] += src.n_reqs;
    }
}

#[test]
fn random_snapshots_satisfy_invariants() {
    for case in 0..CASES {
        let mut rng = SimRng::derive(0x9E9ACC, "repack_invariants", case);
        let c_max = rng.range_f64(100.0, 2000.0);
        let b = rng.range_u64(2, 64) as usize;
        let replicas = random_loads(&mut rng, c_max);
        check_plan(&replicas, c_max, b, case);
    }
}

#[test]
fn no_ramp_down_replica_means_no_op() {
    for case in 0..CASES {
        let mut rng = SimRng::derive(0x9E9ACC, "repack_noop", case);
        let c_max = 1000.0;
        // Every replica is ramping up (kv_prev <= kv_used) or empty: the
        // planner must not touch any of them.
        let n = rng.range_u64(1, 10) as usize;
        let replicas: Vec<ReplicaLoad> = (0..n)
            .map(|replica| {
                let kv_used = rng.range_f64(0.0, c_max);
                ReplicaLoad {
                    replica,
                    kv_used,
                    kv_reserved: kv_used,
                    kv_prev: kv_used * rng.range_f64(0.0, 1.0),
                    n_reqs: if rng.chance(0.2) {
                        0
                    } else {
                        rng.below(20) as usize
                    },
                    weight_version: 0,
                }
            })
            .collect();
        let plan = plan_repack(&replicas, c_max, 64);
        assert!(
            plan.is_empty(),
            "case {case}: planned {:?} with no ramp-down replica",
            plan.moves
        );
    }
}

#[test]
fn single_candidate_is_never_moved() {
    // With one ramp-down replica there is no valid (source, destination)
    // pair, so the plan must be empty no matter the thresholds.
    for case in 0..CASES {
        let mut rng = SimRng::derive(0x9E9ACC, "repack_single", case);
        let kv = rng.range_f64(1.0, 500.0);
        let lone = ReplicaLoad {
            replica: 0,
            kv_used: kv,
            kv_reserved: kv,
            kv_prev: kv + 10.0,
            n_reqs: 1 + rng.below(10) as usize,
            weight_version: 0,
        };
        assert!(plan_repack(&[lone], 1000.0, 64).is_empty(), "case {case}");
    }
}
