/root/repo/target/release/deps/model_properties-0fb76a91d2a4daea.d: crates/cluster/tests/model_properties.rs

/root/repo/target/release/deps/model_properties-0fb76a91d2a4daea: crates/cluster/tests/model_properties.rs

crates/cluster/tests/model_properties.rs:
