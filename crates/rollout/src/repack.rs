//! Algorithm 1: Best-Fit trajectory consolidation (§5.2).
//!
//! Within a group of replicas on the same weight version, the planner
//! partitions ramp-down replicas into *sources* (to be released for a weight
//! update) and *destinations* (to absorb the sources' remaining long-tail
//! trajectories), maximizing released replicas while keeping every
//! destination within the KVCache threshold `C_max` and the roofline batch
//! bound `B`.

/// One replica's load snapshot, as collected by the rollout manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaLoad {
    /// Replica id.
    pub replica: usize,
    /// Current KVCache usage (`C_used`), tokens.
    pub kv_used: f64,
    /// KVCache *reserved* for the replica's in-flight trajectories at their
    /// final lengths, tokens. Diagnostic: Algorithm 1's CanFit uses
    /// `kv_used` (the destination's own trajectories drain while the moved
    /// tail grows), but schedulers wanting a conservative fit can consult
    /// this.
    pub kv_reserved: f64,
    /// KVCache usage at the previous monitoring sample (`C_prev`), tokens.
    pub kv_prev: f64,
    /// In-flight trajectory count (`N_reqs`).
    pub n_reqs: usize,
    /// Weight version the replica is generating with.
    pub weight_version: u64,
}

/// A consolidation plan: each `(source, destination)` pair moves *all* of
/// the source's in-flight trajectories to the destination, releasing the
/// source.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepackPlan {
    /// Planned moves, in planning order.
    pub moves: Vec<(usize, usize)>,
}

impl RepackPlan {
    /// Replicas released by the plan.
    pub fn released(&self) -> Vec<usize> {
        self.moves.iter().map(|&(s, _)| s).collect()
    }

    /// True when nothing moves.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Plans a consolidation for one weight-version group (Algorithm 1).
///
/// * `c_max` — the KVCache threshold in tokens (the "full utilization"
///   level; ~99% of capacity in the paper);
/// * `b` — the roofline batch bound on a destination's trajectory count.
///
/// Candidates are replicas in their ramp-down phase — `C_used` strictly
/// below both `C_max` and the previous sample — holding fewer than `b`
/// in-flight trajectories (and at least one; empty replicas need no
/// release). Sources are tried smallest-footprint first; each picks the
/// valid destination that ends up most densely packed.
pub fn plan_repack(replicas: &[ReplicaLoad], c_max: f64, b: usize) -> RepackPlan {
    // Line 3: candidate set S.
    let mut s: Vec<&ReplicaLoad> = replicas
        .iter()
        .filter(|r| r.n_reqs > 0 && r.kv_used < c_max.min(r.kv_prev) && r.n_reqs < b)
        .collect();
    // Line 4: smallest KVCache footprint first. `total_cmp` (the same
    // policy the stats percentiles use) keeps the sort a total order even
    // on NaN input — NaN sorts after every finite footprint and can never
    // fit a destination, so a poisoned sample degrades to "ignored" instead
    // of panicking mid-plan.
    s.sort_by(|a, b| {
        a.kv_used
            .total_cmp(&b.kv_used)
            .then(a.replica.cmp(&b.replica))
    });

    let mut plan = RepackPlan::default();
    let mut emptied: Vec<usize> = Vec::new();
    // Replicas already designated as destinations stay destinations: they
    // hold consolidated load the plan's CanFit accounting depends on, so
    // releasing them later would both undercount and undo the packing.
    let mut designated: Vec<usize> = Vec::new();
    // Extra load already assigned to each destination by the current plan.
    let mut assigned_kv = vec![0.0f64; replicas.len().max(1)];
    let mut assigned_reqs = vec![0usize; replicas.len().max(1)];
    let index_of = |replica: usize| -> usize {
        replicas
            .iter()
            .position(|r| r.replica == replica)
            .expect("replica in group")
    };

    for (si, src) in s.iter().enumerate() {
        if emptied.contains(&src.replica) || designated.contains(&src.replica) {
            continue;
        }
        // Line 9: valid destinations — candidates not emptied, not the
        // source, with room for the source's load (CanFit).
        let mut best: Option<(usize, f64)> = None;
        for (di, dst) in s.iter().enumerate() {
            if di == si || emptied.contains(&dst.replica) {
                continue;
            }
            // CanFit uses current usage (`C_used`), exactly as Algorithm 1:
            // a destination's trajectories are draining, so their headroom
            // materializes faster than the moved tail grows.
            let d_idx = index_of(dst.replica);
            let kv_load = dst.kv_used + assigned_kv[d_idx];
            let req_load = dst.n_reqs + assigned_reqs[d_idx];
            let fits = kv_load + src.kv_used <= c_max && req_load + src.n_reqs <= b;
            if !fits {
                continue;
            }
            // Line 11: argmax of the destination's packed density.
            if best.is_none_or(|(_, best_kv)| kv_load > best_kv) {
                best = Some((dst.replica, kv_load));
            }
        }
        if let Some((dst, _)) = best {
            let d_idx = index_of(dst);
            assigned_kv[d_idx] += src.kv_used;
            assigned_reqs[d_idx] += src.n_reqs;
            plan.moves.push((src.replica, dst));
            emptied.push(src.replica);
            if !designated.contains(&dst) {
                designated.push(dst);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(replica: usize, kv_used: f64, n_reqs: usize) -> ReplicaLoad {
        ReplicaLoad {
            replica,
            kv_used,
            kv_reserved: kv_used,
            kv_prev: kv_used + 1.0,
            n_reqs,
            weight_version: 0,
        }
    }

    #[test]
    fn nan_kv_sample_does_not_panic_or_distort_plan() {
        // A poisoned (NaN) monitoring sample must neither panic the sort
        // (regression: `partial_cmp().expect()`) nor join any move — NaN
        // fails every CanFit comparison and `total_cmp` orders it last.
        let mut poisoned = load(2, f64::NAN, 2);
        poisoned.kv_prev = f64::NAN;
        let rs = vec![load(0, 100.0, 2), load(1, 120.0, 3), poisoned];
        let plan = plan_repack(&rs, 1000.0, 64);
        assert_eq!(plan.moves, vec![(0, 1)], "finite replicas still repack");
        assert!(
            !plan.moves.iter().any(|&(s, d)| s == 2 || d == 2),
            "NaN replica must not participate"
        );
        // All-NaN input: still a clean no-op.
        let mut poisoned_too = poisoned;
        poisoned_too.replica = 3;
        assert!(plan_repack(&[poisoned, poisoned_too], 1000.0, 64).is_empty());
    }

    #[test]
    fn consolidates_two_tails_into_one() {
        let rs = vec![load(0, 100.0, 2), load(1, 120.0, 3)];
        let plan = plan_repack(&rs, 1000.0, 64);
        assert_eq!(plan.moves, vec![(0, 1)]);
        assert_eq!(plan.released(), vec![0]);
    }

    #[test]
    fn smallest_footprint_released_first() {
        let rs = vec![load(0, 300.0, 4), load(1, 50.0, 1), load(2, 200.0, 2)];
        let plan = plan_repack(&rs, 520.0, 64);
        // 1 (smallest) moves first; densest valid destination preferred.
        assert_eq!(plan.moves[0].0, 1);
        assert!(!plan.moves.iter().any(|&(s, d)| s == d));
    }

    #[test]
    fn canfit_respects_kv_threshold() {
        let rs = vec![load(0, 600.0, 2), load(1, 600.0, 2)];
        // 600 + 600 > 1000: no move possible.
        let plan = plan_repack(&rs, 1000.0, 64);
        assert!(plan.is_empty());
    }

    #[test]
    fn canfit_respects_batch_bound() {
        let rs = vec![load(0, 10.0, 40), load(1, 10.0, 40)];
        let plan = plan_repack(&rs, 1000.0, 64);
        assert!(plan.is_empty(), "40+40 > B=64");
        let plan = plan_repack(&rs, 1000.0, 128);
        assert_eq!(plan.moves.len(), 1);
    }

    #[test]
    fn ramp_up_replicas_excluded() {
        // kv_prev <= kv_used means usage is non-decreasing: not ramp-down.
        let rs = vec![
            ReplicaLoad {
                replica: 0,
                kv_used: 100.0,
                kv_reserved: 100.0,
                kv_prev: 100.0,
                n_reqs: 2,
                weight_version: 0,
            },
            load(1, 100.0, 2),
        ];
        let plan = plan_repack(&rs, 1000.0, 64);
        assert!(plan.is_empty(), "needs two candidates to consolidate");
    }

    #[test]
    fn full_replicas_excluded() {
        let rs = vec![
            ReplicaLoad {
                replica: 0,
                kv_used: 990.0,
                kv_reserved: 990.0,
                kv_prev: 995.0,
                n_reqs: 2,
                weight_version: 0,
            },
            load(1, 50.0, 2),
            load(2, 60.0, 2),
        ];
        // Replica 0 is above C_max=900: not a candidate (neither source nor
        // destination).
        let plan = plan_repack(&rs, 900.0, 64);
        for &(s, d) in &plan.moves {
            assert_ne!(s, 0);
            assert_ne!(d, 0);
        }
        assert_eq!(plan.moves.len(), 1);
    }

    #[test]
    fn empty_replicas_not_sources() {
        let rs = vec![load(0, 0.0, 0), load(1, 100.0, 2), load(2, 100.0, 2)];
        let plan = plan_repack(&rs, 1000.0, 64);
        assert!(!plan.released().contains(&0));
    }

    #[test]
    fn chained_assignments_accumulate_on_destination() {
        // Three small sources should stack onto the same destination while
        // it fits, releasing the maximum number of replicas.
        let rs = vec![
            load(0, 50.0, 1),
            load(1, 60.0, 1),
            load(2, 70.0, 1),
            load(3, 200.0, 3),
        ];
        let plan = plan_repack(&rs, 400.0, 64);
        assert_eq!(plan.moves.len(), 3);
        let dests: Vec<usize> = plan.moves.iter().map(|&(_, d)| d).collect();
        assert!(
            dests.iter().all(|&d| d == 3),
            "densest destination wins: {dests:?}"
        );
    }

    #[test]
    fn released_source_cannot_become_destination() {
        let rs = vec![load(0, 50.0, 1), load(1, 60.0, 1)];
        let plan = plan_repack(&rs, 1000.0, 64);
        assert_eq!(plan.moves.len(), 1);
        let (s, d) = plan.moves[0];
        assert_ne!(s, d);
        // Only one move: the destination was not subsequently released.
    }

    #[test]
    fn empty_input_is_empty_plan() {
        assert!(plan_repack(&[], 100.0, 8).is_empty());
        assert!(plan_repack(&[load(0, 10.0, 1)], 100.0, 8).is_empty());
    }
}
