/root/repo/target/release/deps/laminar_core-d34ea796d1e1f9ee.d: crates/core/src/lib.rs crates/core/src/convergence.rs crates/core/src/hyper.rs crates/core/src/placement.rs crates/core/src/system/mod.rs crates/core/src/system/driver.rs crates/core/src/system/elastic.rs crates/core/src/system/faults.rs crates/core/src/system/tests.rs crates/core/src/system/timeline.rs

/root/repo/target/release/deps/laminar_core-d34ea796d1e1f9ee: crates/core/src/lib.rs crates/core/src/convergence.rs crates/core/src/hyper.rs crates/core/src/placement.rs crates/core/src/system/mod.rs crates/core/src/system/driver.rs crates/core/src/system/elastic.rs crates/core/src/system/faults.rs crates/core/src/system/tests.rs crates/core/src/system/timeline.rs

crates/core/src/lib.rs:
crates/core/src/convergence.rs:
crates/core/src/hyper.rs:
crates/core/src/placement.rs:
crates/core/src/system/mod.rs:
crates/core/src/system/driver.rs:
crates/core/src/system/elastic.rs:
crates/core/src/system/faults.rs:
crates/core/src/system/tests.rs:
crates/core/src/system/timeline.rs:
