//! Deterministic retry/backoff and circuit-breaker primitives.
//!
//! Every recovery path in the workspace — relay heartbeat sweeps, chain
//! rebuild, env-call stalls, replica re-admission after faults — shares
//! these two policies instead of hand-rolling its own loop:
//!
//! * [`RetryPolicy`]: exponential backoff with bounded retries and
//!   [`SimRng`]-driven jitter, so retry storms decorrelate without
//!   sacrificing reproducibility (same seed, same delays, byte for byte);
//! * [`CircuitBreaker`]: a per-node closed → open → half-open breaker over
//!   virtual time, so a flapping component is quarantined for a cooldown
//!   and re-admitted through a single probe rather than being retried on
//!   every sweep.
//!
//! The types live here, at the bottom of the crate stack, for the same
//! reason the trace records do: the relay and rollout layers need them
//! without depending on the runtime layer. `laminar_runtime::policy`
//! re-exports them as the unified public surface.

use crate::rng::SimRng;
use crate::time::{Duration, Time};

/// Deterministic exponential backoff with bounded retries.
///
/// Attempt `k` (0-based) waits `base * factor^k`, capped at `max_delay`,
/// then scaled by a uniform jitter in `[1 - jitter, 1 + jitter]` drawn from
/// the caller's [`SimRng`] stream. After `max_retries` delays the policy
/// reports exhaustion (`delay` returns `None`) and the caller must fail the
/// operation instead of waiting again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per attempt (≥ 1 for genuine backoff).
    pub factor: f64,
    /// Per-attempt delay cap.
    pub max_delay: Duration,
    /// Number of retries before the operation is failed.
    pub max_retries: u32,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by
    /// `1 ± jitter · u` with `u` uniform in `[-1, 1)`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(500),
            factor: 2.0,
            max_delay: Duration::from_secs(30),
            max_retries: 5,
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// A policy with the default curve but a custom retry bound.
    pub fn with_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// Disables jitter (useful where even seeded jitter is unwanted).
    pub fn without_jitter(mut self) -> Self {
        self.jitter = 0.0;
        self
    }

    /// The deterministic (pre-jitter) delay for retry `attempt` (0-based),
    /// or `None` once retries are exhausted.
    pub fn raw_delay(&self, attempt: u32) -> Option<Duration> {
        if attempt >= self.max_retries {
            return None;
        }
        let exp = self.factor.max(1.0).powi(attempt.min(63) as i32);
        let raw = self.base.as_secs_f64() * exp;
        Some(Duration::from_secs_f64(
            raw.min(self.max_delay.as_secs_f64()),
        ))
    }

    /// The jittered delay for retry `attempt` (0-based), or `None` once
    /// retries are exhausted. Jitter draws exactly one value from `rng`
    /// per returned delay, so callers replaying the same stream observe
    /// the same schedule.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> Option<Duration> {
        let raw = self.raw_delay(attempt)?;
        if self.jitter <= 0.0 {
            return Some(raw);
        }
        let u = 2.0 * rng.f64() - 1.0;
        let scale = (1.0 + self.jitter.min(1.0) * u).max(0.0);
        Some(raw.mul_f64(scale))
    }

    /// Worst-case total wait across every retry (all delays at `+jitter`).
    /// Recovery paths use this as the stall budget an operation may consume
    /// before it is abandoned — e.g. the env-call timeout satellite.
    pub fn total_budget(&self) -> Duration {
        let mut total = 0.0;
        for attempt in 0..self.max_retries {
            if let Some(d) = self.raw_delay(attempt) {
                total += d.as_secs_f64() * (1.0 + self.jitter.min(1.0));
            }
        }
        Duration::from_secs_f64(total)
    }
}

/// Breaker position (resolved against the clock by [`CircuitBreaker::allow`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are rejected until the cooldown passes.
    Open,
    /// Cooldown elapsed: exactly one probe is admitted; its outcome
    /// decides between re-closing and re-opening.
    HalfOpen,
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures (within `window` of each other) that trip the
    /// breaker.
    pub failure_threshold: u32,
    /// A failure further than this from the previous one resets the
    /// consecutive count — isolated blips don't accumulate forever.
    pub window: Duration,
    /// How long a tripped breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            window: Duration::from_secs(60),
            cooldown: Duration::from_secs(120),
        }
    }
}

/// A per-node circuit breaker over virtual time.
///
/// Deterministic by construction: transitions depend only on the sequence
/// of `(now, record_*)` calls, never on wall clocks or randomness.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive: u32,
    last_failure: Time,
    open_until: Time,
    probing: bool,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive: 0,
            last_failure: Time::ZERO,
            open_until: Time::ZERO,
            probing: false,
            trips: 0,
        }
    }

    /// Appends the breaker's complete internal state as a fixed-order word
    /// stream — the delta-checkpoint encoding for breaker planes.
    pub fn state_words(&self, out: &mut Vec<u64>) {
        out.push(match self.state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        });
        out.push(self.consecutive as u64);
        out.push(self.last_failure.as_nanos());
        out.push(self.open_until.as_nanos());
        out.push(self.probing as u64);
        out.push(self.trips);
    }

    /// The breaker's position at `now` (an open breaker past its cooldown
    /// reads as half-open).
    pub fn state(&self, now: Time) -> BreakerState {
        match self.state {
            BreakerState::Open if now >= self.open_until => BreakerState::HalfOpen,
            s => s,
        }
    }

    /// True while requests must be rejected at `now`.
    pub fn is_open(&self, now: Time) -> bool {
        self.state == BreakerState::Open && now < self.open_until
    }

    /// Asks permission to issue a request at `now`. Closed breakers always
    /// grant; open breakers reject until the cooldown passes, then admit
    /// exactly one probe (further requests wait for the probe's outcome).
    pub fn allow(&mut self, now: Time) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now < self.open_until {
                    false
                } else {
                    self.state = BreakerState::HalfOpen;
                    self.probing = true;
                    true
                }
            }
            BreakerState::HalfOpen => {
                if self.probing {
                    false
                } else {
                    self.probing = true;
                    true
                }
            }
        }
    }

    /// Reports a failed request. Trips the breaker on the configured number
    /// of consecutive failures, or immediately when a half-open probe fails.
    pub fn record_failure(&mut self, now: Time) {
        if self.state == BreakerState::HalfOpen {
            self.trip(now);
            return;
        }
        if self.consecutive > 0 && now.since(self.last_failure) > self.cfg.window {
            self.consecutive = 0;
        }
        self.consecutive += 1;
        self.last_failure = now;
        if self.state == BreakerState::Closed && self.consecutive >= self.cfg.failure_threshold {
            self.trip(now);
        }
    }

    /// Reports a successful request: the breaker closes and the failure
    /// streak resets.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive = 0;
        self.probing = false;
    }

    /// When an open breaker will next admit a probe (`None` while closed).
    pub fn retry_at(&self) -> Option<Time> {
        match self.state {
            BreakerState::Open => Some(self.open_until),
            _ => None,
        }
    }

    /// Times the breaker has tripped over its lifetime.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    fn trip(&mut self, now: Time) {
        self.state = BreakerState::Open;
        self.open_until = now + self.cfg.cooldown;
        self.consecutive = 0;
        self.probing = false;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_curve_is_exponential_and_capped() {
        let p = RetryPolicy {
            base: Duration::from_secs(1),
            factor: 2.0,
            max_delay: Duration::from_secs(5),
            max_retries: 4,
            jitter: 0.0,
        };
        let delays: Vec<f64> = (0..4)
            .map(|k| p.raw_delay(k).unwrap().as_secs_f64())
            .collect();
        assert_eq!(delays, vec![1.0, 2.0, 4.0, 5.0]);
        assert_eq!(p.raw_delay(4), None, "retries exhausted");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            base: Duration::from_secs(10),
            factor: 1.0,
            max_delay: Duration::from_secs(10),
            max_retries: 100,
            jitter: 0.25,
        };
        let mut a = SimRng::derive(7, "policy-test", 0);
        let mut b = SimRng::derive(7, "policy-test", 0);
        for k in 0..100 {
            let da = p.delay(k, &mut a).unwrap();
            let db = p.delay(k, &mut b).unwrap();
            assert_eq!(da.as_nanos(), db.as_nanos(), "same stream, same delay");
            let s = da.as_secs_f64();
            assert!((7.5..=12.5).contains(&s), "jitter out of bounds: {s}");
        }
    }

    #[test]
    fn total_budget_bounds_every_schedule() {
        let p = RetryPolicy::default();
        let budget = p.total_budget().as_secs_f64();
        for seed in 0..32 {
            let mut rng = SimRng::derive(seed, "budget", 0);
            let total: f64 = (0..p.max_retries)
                .map(|k| p.delay(k, &mut rng).unwrap().as_secs_f64())
                .sum();
            assert!(total <= budget + 1e-9, "schedule {total} > budget {budget}");
        }
    }

    #[test]
    fn breaker_trips_on_consecutive_failures() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            window: Duration::from_secs(60),
            cooldown: Duration::from_secs(100),
        });
        let t = Time::from_secs(10);
        assert!(b.allow(t));
        b.record_failure(t);
        b.record_failure(t + Duration::from_secs(1));
        assert!(b.allow(t + Duration::from_secs(2)), "two failures: closed");
        b.record_failure(t + Duration::from_secs(2));
        assert!(!b.allow(t + Duration::from_secs(3)), "tripped");
        assert_eq!(b.trips(), 1);
        assert_eq!(b.retry_at(), Some(t + Duration::from_secs(102)));
    }

    #[test]
    fn isolated_failures_outside_window_never_trip() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            window: Duration::from_secs(10),
            cooldown: Duration::from_secs(100),
        });
        for k in 0..20u64 {
            let now = Time::from_secs(100 * k);
            b.record_failure(now);
            assert!(b.allow(now), "spaced blips stay closed");
        }
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn half_open_admits_one_probe_and_its_outcome_decides() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            window: Duration::from_secs(60),
            cooldown: Duration::from_secs(50),
        };
        // Probe succeeds: breaker closes again.
        let mut b = CircuitBreaker::new(cfg);
        b.record_failure(Time::from_secs(0));
        assert!(!b.allow(Time::from_secs(10)));
        assert!(
            b.allow(Time::from_secs(60)),
            "cooldown over: probe admitted"
        );
        assert!(!b.allow(Time::from_secs(61)), "only one probe at a time");
        b.record_success();
        assert!(b.allow(Time::from_secs(62)));
        assert_eq!(b.state(Time::from_secs(62)), BreakerState::Closed);

        // Probe fails: breaker re-opens for a full cooldown.
        let mut b = CircuitBreaker::new(cfg);
        b.record_failure(Time::from_secs(0));
        assert!(b.allow(Time::from_secs(55)));
        b.record_failure(Time::from_secs(55));
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(Time::from_secs(100)), "re-opened");
        assert!(b.allow(Time::from_secs(105)), "second cooldown over");
    }

    #[test]
    fn failed_probe_restarts_cooldown_from_failure_time() {
        // The fresh cooldown must be anchored at the probe's *failure* time,
        // not the original trip or the probe's admission — otherwise a slow
        // probe's failure would grant an immediate (or even retroactive)
        // second probe.
        let cfg = BreakerConfig {
            failure_threshold: 1,
            window: Duration::from_secs(60),
            cooldown: Duration::from_secs(50),
        };
        let mut b = CircuitBreaker::new(cfg);
        b.record_failure(Time::from_secs(0));
        assert_eq!(b.retry_at(), Some(Time::from_secs(50)));
        assert!(b.allow(Time::from_secs(60)), "probe admitted");
        // The probe takes 25s of wall time before it fails.
        let probe_failed = Time::from_secs(85);
        b.record_failure(probe_failed);
        assert_eq!(
            b.retry_at(),
            Some(probe_failed + cfg.cooldown),
            "cooldown restarts at the failure, not the admission"
        );
        assert!(
            !b.allow(probe_failed),
            "no second probe the instant the first fails"
        );
        assert!(
            !b.allow(Time::from_secs(110)),
            "still cooling even past admission + cooldown"
        );
        assert!(b.is_open(Time::from_secs(134)));
        assert!(b.allow(Time::from_secs(135)), "fresh cooldown elapsed");
    }

    #[test]
    fn retries_stop_exactly_at_budget_exhaustion() {
        // Off-by-one guard: a policy with N retries yields exactly N delays
        // — attempt N-1 is the last Some, attempt N is None — and with zero
        // jitter those N delays sum to total_budget() exactly, so a caller
        // pacing against the budget runs out of delays and budget together.
        let p = RetryPolicy {
            base: Duration::from_secs(2),
            factor: 2.0,
            max_delay: Duration::from_secs(20),
            max_retries: 6,
            jitter: 0.0,
        };
        let mut rng = SimRng::derive(3, "budget-edge", 0);
        let mut spent = Duration::ZERO;
        let mut yielded = 0u32;
        while let Some(d) = p.delay(yielded, &mut rng) {
            spent += d;
            yielded += 1;
            assert!(yielded <= p.max_retries, "policy exceeded its retry bound");
        }
        assert_eq!(yielded, p.max_retries, "exactly max_retries delays");
        assert_eq!(
            spent.as_nanos(),
            p.total_budget().as_nanos(),
            "zero-jitter schedule spends the whole budget and no more"
        );
        assert_eq!(p.raw_delay(p.max_retries), None);
        assert_eq!(
            p.raw_delay(p.max_retries - 1),
            Some(Duration::from_secs(20)),
            "last delay is still granted"
        );
        // With jitter, every schedule still fits inside the budget even when
        // every draw lands on the +jitter edge.
        let jittered = RetryPolicy { jitter: 0.3, ..p };
        for seed in 0..16 {
            let mut rng = SimRng::derive(seed, "budget-edge-jitter", 0);
            let total: f64 = (0..jittered.max_retries)
                .map(|k| jittered.delay(k, &mut rng).unwrap().as_secs_f64())
                .sum();
            assert!(
                total <= jittered.total_budget().as_secs_f64() + 1e-9,
                "seed {seed}: schedule {total} overran the budget"
            );
        }
    }
}
