/root/repo/target/debug/deps/laminar_experiments-b46f71bbe313e618.d: crates/bench/src/bin/laminar_experiments.rs

/root/repo/target/debug/deps/liblaminar_experiments-b46f71bbe313e618.rmeta: crates/bench/src/bin/laminar_experiments.rs

crates/bench/src/bin/laminar_experiments.rs:
