/root/repo/target/debug/deps/laminar_runtime-680295c68cae01cc.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs

/root/repo/target/debug/deps/laminar_runtime-680295c68cae01cc: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/config.rs:
crates/runtime/src/report.rs:
crates/runtime/src/trace.rs:
