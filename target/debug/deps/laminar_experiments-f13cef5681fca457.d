/root/repo/target/debug/deps/laminar_experiments-f13cef5681fca457.d: crates/bench/src/bin/laminar_experiments.rs

/root/repo/target/debug/deps/liblaminar_experiments-f13cef5681fca457.rmeta: crates/bench/src/bin/laminar_experiments.rs

crates/bench/src/bin/laminar_experiments.rs:
