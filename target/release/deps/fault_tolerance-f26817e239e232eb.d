/root/repo/target/release/deps/fault_tolerance-f26817e239e232eb.d: tests/fault_tolerance.rs

/root/repo/target/release/deps/fault_tolerance-f26817e239e232eb: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
