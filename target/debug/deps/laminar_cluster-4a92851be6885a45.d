/root/repo/target/debug/deps/laminar_cluster-4a92851be6885a45.d: crates/cluster/src/lib.rs crates/cluster/src/chain.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/links.rs crates/cluster/src/model.rs crates/cluster/src/parallel.rs crates/cluster/src/roofline.rs crates/cluster/src/training.rs

/root/repo/target/debug/deps/liblaminar_cluster-4a92851be6885a45.rlib: crates/cluster/src/lib.rs crates/cluster/src/chain.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/links.rs crates/cluster/src/model.rs crates/cluster/src/parallel.rs crates/cluster/src/roofline.rs crates/cluster/src/training.rs

/root/repo/target/debug/deps/liblaminar_cluster-4a92851be6885a45.rmeta: crates/cluster/src/lib.rs crates/cluster/src/chain.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/links.rs crates/cluster/src/model.rs crates/cluster/src/parallel.rs crates/cluster/src/roofline.rs crates/cluster/src/training.rs

crates/cluster/src/lib.rs:
crates/cluster/src/chain.rs:
crates/cluster/src/collective.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/links.rs:
crates/cluster/src/model.rs:
crates/cluster/src/parallel.rs:
crates/cluster/src/roofline.rs:
crates/cluster/src/training.rs:
