//! The event queue and simulation driver.

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A world of simulated components.
///
/// The world owns all mutable state; the engine only owns the clock and the
/// pending-event queue. Handlers receive the current instant and may schedule
/// follow-up events through the [`Scheduler`].
pub trait SimWorld {
    /// The event alphabet of this world.
    type Event;

    /// Delivers one event. Called exactly once per scheduled event, in
    /// non-decreasing time order.
    fn handle(&mut self, now: Time, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

#[derive(Clone)]
struct Scheduled<E> {
    at: Time,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO, which makes runs deterministic.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The clock plus the pending-event queue.
///
/// Cloning (for `E: Clone`) copies the queue's backing storage verbatim, so
/// a clone pops events in exactly the same order as the original — the
/// property the checkpoint/restore plane relies on for byte-identical
/// resumption.
#[derive(Clone)]
pub struct Scheduler<E> {
    now: Time,
    seq: u64,
    delivered: u64,
    queue: BinaryHeap<Scheduled<E>>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            now: Time::ZERO,
            seq: 0,
            delivered: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// The current virtual instant.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total number of events ever scheduled (the sequence counter). With
    /// [`Scheduler::now`] and [`Scheduler::delivered`] this identifies the
    /// exact point a deterministic run has reached — the checkpoint plane
    /// folds all three into its state fingerprint.
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `ev` at absolute time `at`. Scheduling in the past is a
    /// logic error; the event is clamped to "now" so time never runs
    /// backwards, which keeps model bugs observable rather than corrupting
    /// the clock.
    pub fn at(&mut self, at: Time, ev: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, ev });
    }

    /// Schedules `ev` after `delay` from the current instant.
    pub fn after(&mut self, delay: Duration, ev: E) {
        self.at(self.now + delay, ev);
    }

    /// Schedules `ev` for immediate delivery (after already-queued events at
    /// the current instant).
    pub fn immediately(&mut self, ev: E) {
        self.at(self.now, ev);
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.peek().map(|s| s.at)
    }

    /// The next pending event as `(at, seq, &ev)` without delivering it —
    /// what a driver that must *classify* the next event before deciding
    /// whether to deliver it needs (the sharded fence-window micro-loop).
    pub fn peek(&self) -> Option<(Time, u64, &E)> {
        self.queue.peek().map(|s| (s.at, s.seq, &s.ev))
    }

    /// Every pending event as `(at, seq, &ev)` in canonical `(at, seq)`
    /// order. `(at, seq)` is a total order over scheduled events, so this
    /// sorted view determines the exact pop sequence regardless of the
    /// heap's internal layout — it is the checkpoint plane's canonical
    /// encoding of the queue (one chunk per pending event, stable keys
    /// while an event waits).
    pub fn pending_entries(&self) -> Vec<(Time, u64, &E)> {
        let mut out: Vec<(Time, u64, &E)> =
            self.queue.iter().map(|s| (s.at, s.seq, &s.ev)).collect();
        out.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        out
    }

    /// Visits every pending event as `(at, seq, &ev)` in *heap* (arbitrary)
    /// order, without allocating. Callers that need the canonical pop order
    /// collect into a reusable buffer and sort by `(at, seq)` themselves —
    /// the allocation-free complement of [`Scheduler::pending_entries`] for
    /// hot loops (the sharded driver's window planner scans the queue every
    /// fence window).
    pub fn scan_pending<F: FnMut(Time, u64, &E)>(&self, mut f: F) {
        for s in self.queue.iter() {
            f(s.at, s.seq, &s.ev);
        }
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        let s = self.queue.pop()?;
        debug_assert!(s.at >= self.now, "event queue moved backwards");
        self.now = s.at;
        self.delivered += 1;
        Some((s.at, s.ev))
    }
}

/// A world paired with its scheduler: the complete simulation state.
pub struct Simulation<W: SimWorld> {
    /// The user world holding all component state.
    pub world: W,
    /// The clock and the pending-event queue.
    pub scheduler: Scheduler<W::Event>,
}

impl<W: SimWorld + Clone> Clone for Simulation<W>
where
    W::Event: Clone,
{
    fn clone(&self) -> Self {
        Simulation {
            world: self.world.clone(),
            scheduler: self.scheduler.clone(),
        }
    }
}

impl<W: SimWorld> Simulation<W> {
    /// Wraps a world with a fresh scheduler at time zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            scheduler: Scheduler::new(),
        }
    }

    /// Delivers the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.scheduler.pop() {
            Some((now, ev)) => {
                self.world.handle(now, ev, &mut self.scheduler);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains. Returns the final instant.
    pub fn run_to_completion(&mut self) -> Time {
        while self.step() {}
        self.scheduler.now()
    }

    /// Runs until the queue drains or the clock passes `deadline`, whichever
    /// comes first. Events scheduled strictly after the deadline are left in
    /// the queue.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        while let Some(t) = self.scheduler.next_event_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.scheduler.now()
    }

    /// Runs until `pred` holds on the world, the queue drains, or the event
    /// budget is exhausted. Returns `true` if the predicate was met.
    pub fn run_while<F: FnMut(&W) -> bool>(&mut self, mut keep_going: F, max_events: u64) -> bool {
        let mut budget = max_events;
        while keep_going(&self.world) {
            if budget == 0 || !self.step() {
                return !keep_going(&self.world);
            }
            budget -= 1;
        }
        true
    }

    /// Like [`Simulation::run_while`], but also pauses once the next pending
    /// event lies strictly after `deadline` — leaving the simulation at a
    /// well-defined between-events instant, which is exactly where the
    /// checkpoint plane takes its snapshots. Returns `true` if the predicate
    /// was met (the run finished), `false` if it paused at the deadline, the
    /// queue drained, or the budget ran out first.
    pub fn run_while_until<F: FnMut(&W) -> bool>(
        &mut self,
        mut keep_going: F,
        deadline: Time,
        max_events: u64,
    ) -> bool {
        let mut budget = max_events;
        while keep_going(&self.world) {
            match self.scheduler.next_event_time() {
                Some(t) if t <= deadline => {
                    if budget == 0 {
                        return false;
                    }
                    self.step();
                    budget -= 1;
                }
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl SimWorld for Recorder {
        type Event = u32;
        fn handle(&mut self, now: Time, ev: u32, _s: &mut Scheduler<u32>) {
            self.seen.push((now.as_nanos(), ev));
        }
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut sim = Simulation::new(Recorder::default());
        sim.scheduler.at(Time::from_nanos(30), 3);
        sim.scheduler.at(Time::from_nanos(10), 1);
        sim.scheduler.at(Time::from_nanos(20), 2);
        sim.run_to_completion();
        assert_eq!(sim.world.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_deliver_fifo() {
        let mut sim = Simulation::new(Recorder::default());
        for i in 0..100 {
            sim.scheduler.at(Time::from_nanos(5), i);
        }
        sim.run_to_completion();
        let order: Vec<u32> = sim.world.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct Clamper {
            delivered_at: Vec<u64>,
        }
        impl SimWorld for Clamper {
            type Event = bool;
            fn handle(&mut self, now: Time, first: bool, s: &mut Scheduler<bool>) {
                self.delivered_at.push(now.as_nanos());
                if first {
                    // Attempt to schedule into the past.
                    s.at(Time::from_nanos(1), false);
                }
            }
        }
        let mut sim = Simulation::new(Clamper {
            delivered_at: vec![],
        });
        sim.scheduler.at(Time::from_nanos(100), true);
        sim.run_to_completion();
        assert_eq!(sim.world.delivered_at, vec![100, 100]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Recorder::default());
        for i in 1..=10u64 {
            sim.scheduler.at(Time::from_secs(i), i as u32);
        }
        sim.run_until(Time::from_secs(4));
        assert_eq!(sim.world.seen.len(), 4);
        assert_eq!(sim.scheduler.pending(), 6);
        // Resuming picks up where we left off.
        sim.run_to_completion();
        assert_eq!(sim.world.seen.len(), 10);
    }

    #[test]
    fn run_while_respects_predicate_and_budget() {
        struct Ticker {
            n: u32,
        }
        impl SimWorld for Ticker {
            type Event = ();
            fn handle(&mut self, _now: Time, _ev: (), s: &mut Scheduler<()>) {
                self.n += 1;
                s.after(Duration::from_secs(1), ());
            }
        }
        let mut sim = Simulation::new(Ticker { n: 0 });
        sim.scheduler.immediately(());
        let met = sim.run_while(|w| w.n < 5, 1_000);
        assert!(met);
        assert_eq!(sim.world.n, 5);

        let mut sim = Simulation::new(Ticker { n: 0 });
        sim.scheduler.immediately(());
        let met = sim.run_while(|w| w.n < 5, 2);
        assert!(!met);
    }

    #[test]
    fn run_while_until_pauses_between_events() {
        struct Ticker {
            n: u32,
        }
        impl SimWorld for Ticker {
            type Event = ();
            fn handle(&mut self, _now: Time, _ev: (), s: &mut Scheduler<()>) {
                self.n += 1;
                s.after(Duration::from_secs(1), ());
            }
        }
        let mut sim = Simulation::new(Ticker { n: 0 });
        sim.scheduler.immediately(());
        // Events land at t=0,1,2,3s; the 4s deadline admits four of them.
        let met = sim.run_while_until(|w| w.n < 100, Time::from_secs(3), 1_000);
        assert!(!met, "paused at the deadline, predicate unmet");
        assert_eq!(sim.world.n, 4);
        assert_eq!(
            sim.scheduler.next_event_time(),
            Some(Time::from_secs(4)),
            "next event left queued strictly after the deadline"
        );
        let met = sim.run_while_until(|w| w.n < 6, Time::from_secs(1_000), 1_000);
        assert!(met, "resuming past the deadline finishes the predicate");
        assert_eq!(sim.world.n, 6);
    }

    #[test]
    fn cloned_simulation_replays_identically() {
        #[derive(Clone, Default)]
        struct Chain {
            seen: Vec<(u64, u32)>,
        }
        impl SimWorld for Chain {
            type Event = u32;
            fn handle(&mut self, now: Time, ev: u32, s: &mut Scheduler<u32>) {
                self.seen.push((now.as_nanos(), ev));
                // Fan out: ties at the same instant stress FIFO order. The
                // double spawn makes the event count grow like Fibonacci in
                // the threshold, so keep it small: 18 yields ~10k events.
                if ev < 18 {
                    s.after(Duration::from_nanos(ev as u64 % 3), ev + 1);
                    s.after(Duration::from_nanos(2), ev + 2);
                }
            }
        }
        let mut sim = Simulation::new(Chain::default());
        sim.scheduler.at(Time::from_nanos(5), 0);
        sim.run_while(|w| w.seen.len() < 17, 1_000_000);
        let snapshot = sim.clone();
        assert_eq!(snapshot.scheduler.scheduled(), sim.scheduler.scheduled());
        sim.run_to_completion();
        let mut resumed = snapshot;
        resumed.run_to_completion();
        assert_eq!(
            resumed.world.seen, sim.world.seen,
            "a cloned simulation must replay the identical event sequence"
        );
        assert_eq!(resumed.scheduler.now(), sim.scheduler.now());
        assert_eq!(resumed.scheduler.delivered(), sim.scheduler.delivered());
    }

    #[test]
    fn delivered_counts_events() {
        let mut sim = Simulation::new(Recorder::default());
        sim.scheduler.at(Time::from_nanos(1), 1);
        sim.scheduler.at(Time::from_nanos(2), 2);
        sim.run_to_completion();
        assert_eq!(sim.scheduler.delivered(), 2);
    }
}
