//! The batch step loop: internal event discovery, virtual-time advancement,
//! decode-rate re-evaluation, and KVCache accounting.

use super::{Internal, ReplicaEngine};
use crate::traj::Phase;
use laminar_sim::Time;

impl ReplicaEngine {
    /// The next instant at which the replica's state changes on its own,
    /// if any. The world schedules a wake event here.
    pub fn next_event_time(&self) -> Option<Time> {
        self.next_internal().map(|(t, _)| t)
    }

    /// Advances the replica's state to `now`, applying every internal
    /// transition (prefill completions, env returns, segment completions,
    /// rate re-evaluations) in order.
    pub fn advance_to(&mut self, now: Time) {
        let mut guard = 0u64;
        while let Some((t, kind)) = self.next_internal() {
            if t > now {
                break;
            }
            guard += 1;
            assert!(guard < 50_000_000, "replica engine event storm — model bug");
            self.apply_progress(t);
            match kind {
                Internal::PrefillDone(id) => {
                    if let Some(st) = self.active.get_mut(&id) {
                        st.phase = Phase::Decoding;
                        st.decode_started_at = t;
                        let ctx = st.context_tokens();
                        self.decoding_count += 1;
                        self.decoding_ctx_sum += ctx;
                    }
                }
                Internal::EnvReturn(id) => self.env_return(id, t),
                Internal::SegmentDone => self.finish_ready_segments(t),
                Internal::Recalc => {}
            }
            self.try_admit(t);
            self.recalc_rate();
            self.record(t);
        }
        self.apply_progress(now);
    }

    pub(super) fn next_internal(&self) -> Option<(Time, Internal)> {
        let mut best: Option<(Time, Internal)> = None;
        let mut consider = |t: Time, k: Internal| {
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, k));
            }
        };
        for (&id, st) in &self.active {
            match st.phase {
                Phase::Prefill { until } => consider(until, Internal::PrefillDone(id)),
                Phase::Env { until } => consider(until, Internal::EnvReturn(id)),
                Phase::Decoding => {}
            }
        }
        if self.decoding_count > 0 && self.step_secs > 0.0 {
            let min_rem = self
                .active
                .values()
                .filter(|s| s.phase == Phase::Decoding)
                .map(|s| s.remaining_in_segment())
                .fold(f64::INFINITY, f64::min);
            if min_rem.is_finite() {
                let t_done = self.offset(min_rem.max(0.0));
                consider(t_done, Internal::SegmentDone);
                let t_recalc = self.offset(self.cfg.horizon_steps);
                consider(t_recalc, Internal::Recalc);
            }
        }
        best
    }

    /// Decoding is paused while the prefill pipeline is busy
    /// (prefill-prioritized scheduling, the vLLM default): decode steps
    /// resume only once queued prefills drain.
    fn decode_resume_at(&self) -> Time {
        self.last_update.max(self.prefill_busy_until)
    }

    fn offset(&self, steps: f64) -> Time {
        Time::from_secs_f64(self.decode_resume_at().as_secs_f64() + steps * self.step_secs)
    }

    /// Advances decode progress of every decoding trajectory to `t` at the
    /// current rate.
    pub(super) fn apply_progress(&mut self, t: Time) {
        if t <= self.last_update {
            return;
        }
        if self.decoding_count > 0 && self.step_secs > 0.0 {
            // Progress only accrues once the prefill pipeline is clear.
            let start = self.decode_resume_at().min(t);
            let steps = t.since(start).as_secs_f64() / self.step_secs;
            for st in self.active.values_mut() {
                if st.phase == Phase::Decoding {
                    st.decoded_in_segment += steps;
                    st.total_decoded += steps;
                }
            }
            let grown = self.decoding_count as f64 * steps;
            self.decoding_ctx_sum += grown;
            self.resident_ctx_sum += grown;
            self.tokens_decoded += grown;
        }
        self.last_update = t;
    }

    pub(super) fn recalc_rate(&mut self) {
        self.step_secs = if self.decoding_count > 0 {
            self.decode
                .step_secs(self.decoding_count, self.decoding_ctx_sum)
        } else {
            0.0
        };
    }

    pub(super) fn record(&mut self, t: Time) {
        self.busy.record(t, self.decoding_count as f64);
        self.kv_tw.record(t, self.kv_utilization());
        if self.cfg.record_kv_series {
            self.kv_series.push(t, self.kv_utilization());
        }
    }

    pub(super) fn after_change(&mut self, now: Time) {
        self.epoch += 1;
        self.recalc_rate();
        self.record(now);
    }
}
