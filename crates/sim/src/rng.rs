//! Seeded random-number utilities.
//!
//! All stochastic model inputs flow through [`SimRng`] so that experiments
//! are reproducible from a single `u64` seed, and so that independent
//! components can derive decorrelated streams from a shared root seed.
//!
//! The generator is a self-contained xoshiro256++ core seeded through
//! SplitMix64 — no external crates, byte-stable across platforms, which is
//! what the determinism regression suite relies on.

/// A seeded random stream.
///
/// Backed by xoshiro256++ (Blackman & Vigna), a small, fast generator with
/// good statistical quality. The surface is kept deliberately small so the
/// rest of the codebase never talks to a generator directly.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a root seed.
    ///
    /// The 256-bit state is filled by iterating SplitMix64 from the seed, the
    /// initialization recommended by the xoshiro authors; it guarantees a
    /// non-zero state for every seed.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(x);
        }
        SimRng { s }
    }

    /// Derives a decorrelated child stream for a named component.
    ///
    /// The mixing uses SplitMix64 over `seed ^ hash(label, index)` so that
    /// streams for distinct `(label, index)` pairs are independent even when
    /// root seeds are small consecutive integers.
    pub fn derive(seed: u64, label: &str, index: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimRng::new(splitmix64(seed ^ h))
    }

    /// The four internal state words. Exposed for state fingerprinting
    /// (checkpoint descriptors); equal words mean the streams will produce
    /// identical output forever.
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    pub(crate) fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high-quality bits mapped onto the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        // Rejection sampling to stay exactly uniform: discard draws from the
        // short final partial block of the u64 range.
        let zone = u64::MAX - u64::MAX.wrapping_rem(n);
        loop {
            let x = self.next_u64();
            if x < zone || zone == 0 {
                return x % n;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "SimRng::range_u64 empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform usize index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal variate via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples an index proportionally to non-negative `weights`. Returns
    /// `None` when all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                x -= w;
                if x <= 0.0 {
                    return Some(i);
                }
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = SimRng::derive(1, "rollout", 0);
        let mut b = SimRng::derive(1, "rollout", 1);
        let mut c = SimRng::derive(1, "trainer", 0);
        let (x, y, z) = (a.f64(), b.f64(), c.f64());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = SimRng::new(21);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn standard_normal_has_sane_moments() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(5);
        let w = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..8000 {
            counts[r.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_empty_and_zero() {
        let mut r = SimRng::new(5);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
