//! Figure 13: reward versus wall-clock time.
//!
//! Two-stage experiment: (1) measure each system's iteration time on the
//! throughput simulator at the convergence placement; (2) train the real
//! GRPO learner under each system's staleness semantics, spacing
//! evaluation points by the measured iteration times.

use crate::experiments::Opts;
use crate::table::TextTable;
use laminar_cluster::ModelSpec;
use laminar_core::{convergence_curve, ConvergenceConfig, StalenessRegime, SystemKind};
use laminar_rl::ReasonEnv;
use laminar_workload::{Checkpoint, WorkloadGenerator};
use std::fmt::Write as _;

fn secs_per_iteration(opts: &Opts, kind: SystemKind) -> f64 {
    let total = if opts.quick { 16 } else { 64 };
    let mut cfg = opts.config(
        kind,
        ModelSpec::qwen_7b(),
        total,
        WorkloadGenerator::single_turn(opts.seed, Checkpoint::Math7B),
    );
    // Convergence experiments cap per-rollout concurrency at 256 (Table 3).
    cfg.max_concurrency = cfg.max_concurrency.min(256);
    let report = opts.run_system(kind, &cfg);
    let n = report.iteration_secs.len().max(1) as f64;
    report.iteration_secs.iter().sum::<f64>() / n
}

fn regime_for(kind: SystemKind, laminar_staleness: &[f64]) -> StalenessRegime {
    match kind {
        SystemKind::Verl => StalenessRegime::OnPolicy,
        SystemKind::OneStep | SystemKind::StreamGen => StalenessRegime::Fixed { k: 1 },
        SystemKind::PartialRollout => StalenessRegime::Mixed { window: 4 },
        SystemKind::Laminar => StalenessRegime::Inherent {
            weights: laminar_staleness.to_vec(),
        },
    }
}

/// Figure 13: convergence comparison.
pub fn fig13(opts: &Opts) -> String {
    let mut out = String::from("Figure 13 — reward vs wall-clock time (7B-scale setting)\n\n");
    // Stage 1: iteration times from the throughput simulator.
    let mut secs = Vec::new();
    for kind in SystemKind::all() {
        secs.push((kind, secs_per_iteration(opts, kind)));
    }
    let mut t = TextTable::new(vec!["system", "secs/iteration (simulated)"]);
    for (kind, s) in &secs {
        t.row(vec![kind.name().to_string(), format!("{s:.1}")]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // Stage 2: real GRPO training under each regime. The Laminar inherent
    // staleness distribution comes from its own simulated runs (Figure 10):
    // mostly 0-2, never above 4.
    let laminar_weights = [0.45, 0.3, 0.15, 0.07, 0.03];
    let iterations = if opts.quick { 120 } else { 300 };
    let mut curves = Vec::new();
    for (kind, s) in &secs {
        let mut ccfg = ConvergenceConfig::standard(*s, opts.seed);
        ccfg.env = ReasonEnv::new(8, 3, 7, opts.seed);
        ccfg.iterations = iterations;
        ccfg.eval_every = iterations / 10;
        ccfg.eval_episodes = if opts.quick { 300 } else { 800 };
        let regime = regime_for(*kind, &laminar_weights);
        curves.push((kind.name(), convergence_curve(&regime, &ccfg)));
    }

    // Print the curves on a shared wall-clock axis.
    let mut t = TextTable::new({
        let mut h = vec!["wall clock".to_string()];
        h.extend(curves.iter().map(|(n, _)| n.to_string()));
        h
    });
    let rows = curves[0].1.len();
    let horizon = curves
        .iter()
        .map(|(_, c)| c.last().map(|&(t, _)| t).unwrap_or(0.0))
        .fold(0.0f64, f64::max);
    for i in 0..rows {
        // Common axis: fraction of the slowest system's horizon.
        let frac = (i + 1) as f64 / rows as f64;
        let wall = frac * horizon;
        let mut row = vec![format!("{:.0}s", wall)];
        for (_, curve) in &curves {
            // Reward of the last eval point at or before this wall time.
            let r = curve
                .iter()
                .take_while(|&&(t, _)| t <= wall + 1e-9)
                .last()
                .map(|&(_, r)| r)
                .unwrap_or(0.0);
            row.push(format!("{r:.3}"));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    // Time to the reward threshold.
    let threshold = 0.5;
    let mut tt = TextTable::new(vec!["system", &format!("time to reward {threshold}")]);
    let mut lam_time = None;
    let mut best_base = f64::INFINITY;
    for (name, curve) in &curves {
        let t_hit = laminar_core::convergence::time_to_reward(curve, threshold);
        if *name == "Laminar" {
            lam_time = t_hit;
        } else if let Some(x) = t_hit {
            best_base = best_base.min(x);
        }
        tt.row(vec![
            name.to_string(),
            t_hit
                .map(|x| format!("{x:.0}s"))
                .unwrap_or_else(|| "not reached".into()),
        ]);
    }
    out.push('\n');
    out.push_str(&tt.render());
    if let Some(lt) = lam_time {
        if best_base.is_finite() {
            let _ = writeln!(
                out,
                "\nLaminar reaches the threshold {:.2}x faster than the best baseline\n\
                 (paper: 1.77x for 7B / 1.59x for 32B vs on-policy verl).",
                best_base / lt
            );
        }
    }
    out.push_str(
        "paper: Laminar converges fastest (high throughput + minimal staleness, no\n\
         mixed-version bias); partial rollout's throughput advantage is eroded by\n\
         mixing policy versions within trajectories.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_match_systems() {
        assert_eq!(
            regime_for(SystemKind::Verl, &[1.0]),
            StalenessRegime::OnPolicy
        );
        assert_eq!(
            regime_for(SystemKind::OneStep, &[1.0]),
            StalenessRegime::Fixed { k: 1 }
        );
        assert!(matches!(
            regime_for(SystemKind::PartialRollout, &[1.0]),
            StalenessRegime::Mixed { window: 4 }
        ));
    }
}
