//! Minimal dense neural-network kit: linear layers, ReLU MLPs, softmax
//! utilities, and Adam. No external tensor library — parameters are plain
//! `Vec<f64>` and every gradient is derived by hand (and verified against
//! finite differences in the tests).

use laminar_sim::SimRng;

/// A dense layer `y = W·x + b` with accumulated gradients.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
    /// Row-major weights, `out_dim × in_dim`.
    pub w: Vec<f64>,
    /// Biases, `out_dim`.
    pub b: Vec<f64>,
    /// Accumulated weight gradients.
    pub gw: Vec<f64>,
    /// Accumulated bias gradients.
    pub gb: Vec<f64>,
}

impl Linear {
    /// He-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SimRng) -> Self {
        let scale = (2.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.standard_normal() * scale)
            .collect();
        Linear {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
        }
    }

    /// Forward pass for a single input vector.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim);
        let mut y = self.b.clone();
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            *yo += row.iter().zip(x).map(|(w, x)| w * x).sum::<f64>();
        }
        y
    }

    /// Backward pass: given the input `x` and upstream gradient `dy`,
    /// accumulates parameter gradients and returns `dx`.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        debug_assert_eq!(dy.len(), self.out_dim);
        let mut dx = vec![0.0; self.in_dim];
        for (o, &g) in dy.iter().enumerate() {
            self.gb[o] += g;
            let row = o * self.in_dim;
            for i in 0..self.in_dim {
                self.gw[row + i] += g * x[i];
                dx[i] += g * self.w[row + i];
            }
        }
        dx
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Visits `(params, grads)` pairs, weights then biases.
    pub fn visit(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

/// A ReLU MLP with a linear output head.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layers, applied in order; ReLU between layers, none after the last.
    pub layers: Vec<Linear>,
}

/// Cached activations from an [`Mlp::forward`] pass, needed for backward.
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Input plus each layer's post-activation output.
    pub acts: Vec<Vec<f64>>,
    /// Pre-activation outputs per layer.
    pub pre: Vec<Vec<f64>>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[in, 64, out]`.
    pub fn new(dims: &[usize], rng: &mut SimRng) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = dims
            .windows(2)
            .map(|d| Linear::new(d[0], d[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Forward pass returning the output and the cache for backward.
    pub fn forward(&self, x: &[f64]) -> (Vec<f64>, MlpCache) {
        let mut acts = vec![x.to_vec()];
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut cur = x.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&cur);
            pre.push(z.clone());
            cur = if li + 1 < self.layers.len() {
                z.iter().map(|v| v.max(0.0)).collect()
            } else {
                z
            };
            acts.push(cur.clone());
        }
        (cur, MlpCache { acts, pre })
    }

    /// Backward pass from an output gradient, accumulating parameter
    /// gradients.
    pub fn backward(&mut self, cache: &MlpCache, dout: &[f64]) {
        let mut grad = dout.to_vec();
        for li in (0..self.layers.len()).rev() {
            if li + 1 < self.layers.len() {
                // Undo the ReLU of this layer's output.
                for (g, z) in grad.iter_mut().zip(&cache.pre[li]) {
                    if *z <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[li].backward(&cache.acts[li], &grad);
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Linear::zero_grad);
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Log-softmax of one index.
pub fn log_softmax_at(logits: &[f64], idx: usize) -> f64 {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let lse: f64 = logits.iter().map(|l| (l - max).exp()).sum::<f64>().ln() + max;
    logits[idx] - lse
}

/// Anything exposing `(parameter, gradient)` slice pairs in a stable order.
pub trait Params {
    /// Visits every `(params, grads)` pair. The traversal order must be
    /// identical on every call for a given model.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64]));
}

impl Params for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.visit(f);
    }
}

impl Params for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        for l in &mut self.layers {
            l.visit(f);
        }
    }
}

/// The Adam optimizer, with first/second-moment state matching a model's
/// visit order.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Stability epsilon.
    pub eps: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    step: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates an optimizer.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            m: vec![],
            v: vec![],
        }
    }

    /// Applies one update to the model. The model's visit order must be
    /// stable across calls.
    pub fn step(&mut self, model: &mut dyn Params) {
        self.step += 1;
        let b1c = 1.0 - self.beta1.powi(self.step as i32);
        let b2c = 1.0 - self.beta2.powi(self.step as i32);
        let (beta1, beta2, eps, lr, wd) =
            (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
        let m = &mut self.m;
        let v = &mut self.v;
        let mut slot = 0usize;
        model.visit_params(&mut |params: &mut [f64], grads: &mut [f64]| {
            if m.len() <= slot {
                m.push(vec![0.0; params.len()]);
                v.push(vec![0.0; params.len()]);
            }
            let (ms, vs) = (&mut m[slot], &mut v[slot]);
            assert_eq!(ms.len(), params.len(), "visit order changed under Adam");
            for i in 0..params.len() {
                let g = grads[i];
                ms[i] = beta1 * ms[i] + (1.0 - beta1) * g;
                vs[i] = beta2 * vs[i] + (1.0 - beta2) * g * g;
                let mhat = ms[i] / b1c;
                let vhat = vs[i] / b2c;
                params[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * params[i]);
            }
            slot += 1;
        });
    }
}

/// Clips a model's gradients to a global L2 norm (two passes).
pub fn clip_grad_norm(model: &mut dyn Params, max_norm: f64) {
    let mut sq = 0.0f64;
    model.visit_params(&mut |_p, g| {
        sq += g.iter().map(|x| x * x).sum::<f64>();
    });
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        model.visit_params(&mut |_p, g| {
            for x in g.iter_mut() {
                *x *= scale;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = SimRng::new(1);
        let mut l = Linear::new(2, 2, &mut rng);
        l.w = vec![1.0, 2.0, 3.0, 4.0];
        l.b = vec![0.5, -0.5];
        let y = l.forward(&[1.0, -1.0]);
        assert!((y[0] - (1.0 - 2.0 + 0.5)).abs() < 1e-12);
        assert!((y[1] - (3.0 - 4.0 - 0.5)).abs() < 1e-12);
    }

    /// Finite-difference check of the full MLP backward pass through a
    /// scalar loss `L = sum(softmax_ce)`.
    #[test]
    fn mlp_gradients_match_finite_differences() {
        let mut rng = SimRng::new(7);
        let mut mlp = Mlp::new(&[3, 5, 4], &mut rng);
        let x = [0.3, -0.7, 1.1];
        let target = 2usize;

        let loss = |m: &Mlp| {
            let (out, _) = m.forward(&x);
            -log_softmax_at(&out, target)
        };

        // Analytic gradients.
        let (out, cache) = mlp.forward(&x);
        let probs = softmax(&out);
        let mut dl: Vec<f64> = probs.clone();
        dl[target] -= 1.0; // d(-logp)/dlogits
        mlp.zero_grad();
        mlp.backward(&cache, &dl);

        // Compare a sample of parameters against central differences.
        let h = 1e-6;
        let mut checked = 0;
        for li in 0..mlp.layers.len() {
            for pi in (0..mlp.layers[li].w.len()).step_by(3) {
                let orig = mlp.layers[li].w[pi];
                mlp.layers[li].w[pi] = orig + h;
                let lp = loss(&mlp);
                mlp.layers[li].w[pi] = orig - h;
                let lm = loss(&mlp);
                mlp.layers[li].w[pi] = orig;
                let fd = (lp - lm) / (2.0 * h);
                let an = mlp.layers[li].gw[pi];
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + fd.abs().max(an.abs())),
                    "layer {li} w[{pi}]: fd={fd} analytic={an}"
                );
                checked += 1;
            }
        }
        assert!(checked > 5);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0, 999.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[0] && p[0] > p[2]);
        assert!((log_softmax_at(&[0.0, 0.0], 0) - (0.5f64).ln()).abs() < 1e-12);
    }

    struct RawParams {
        p: Vec<f64>,
        g: Vec<f64>,
    }

    impl Params for RawParams {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
            f(&mut self.p, &mut self.g);
        }
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize (x - 3)^2 through the Params interface.
        let mut m = RawParams {
            p: vec![0.0],
            g: vec![0.0],
        };
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            m.g[0] = 2.0 * (m.p[0] - 3.0);
            opt.step(&mut m);
        }
        assert!((m.p[0] - 3.0).abs() < 1e-2, "x={}", m.p[0]);
    }

    #[test]
    fn adam_detects_changed_visit_order() {
        let mut a = RawParams {
            p: vec![0.0; 2],
            g: vec![1.0; 2],
        };
        let mut opt = Adam::new(0.1);
        opt.step(&mut a);
        let mut b = RawParams {
            p: vec![0.0; 3],
            g: vec![1.0; 3],
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            opt.step(&mut b);
        }));
        assert!(result.is_err(), "shape change must be caught");
    }

    #[test]
    fn grad_clip_scales_to_norm() {
        let mut m = RawParams {
            p: vec![0.0; 2],
            g: vec![3.0, 4.0],
        }; // norm 5
        clip_grad_norm(&mut m, 1.0);
        let norm = (m.g[0] * m.g[0] + m.g[1] * m.g[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        // Below the cap: untouched.
        let mut m2 = RawParams {
            p: vec![0.0; 2],
            g: vec![0.3, 0.4],
        };
        clip_grad_norm(&mut m2, 1.0);
        assert_eq!(m2.g, vec![0.3, 0.4]);
    }

    #[test]
    fn mlp_param_count() {
        let mut rng = SimRng::new(2);
        let mlp = Mlp::new(&[4, 8, 3], &mut rng);
        assert_eq!(mlp.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
    }
}
