/root/repo/target/release/deps/laminar_cluster-f66c259ee4f2bd95.d: crates/cluster/src/lib.rs crates/cluster/src/chain.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/links.rs crates/cluster/src/model.rs crates/cluster/src/parallel.rs crates/cluster/src/roofline.rs crates/cluster/src/training.rs

/root/repo/target/release/deps/liblaminar_cluster-f66c259ee4f2bd95.rlib: crates/cluster/src/lib.rs crates/cluster/src/chain.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/links.rs crates/cluster/src/model.rs crates/cluster/src/parallel.rs crates/cluster/src/roofline.rs crates/cluster/src/training.rs

/root/repo/target/release/deps/liblaminar_cluster-f66c259ee4f2bd95.rmeta: crates/cluster/src/lib.rs crates/cluster/src/chain.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/links.rs crates/cluster/src/model.rs crates/cluster/src/parallel.rs crates/cluster/src/roofline.rs crates/cluster/src/training.rs

crates/cluster/src/lib.rs:
crates/cluster/src/chain.rs:
crates/cluster/src/collective.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/links.rs:
crates/cluster/src/model.rs:
crates/cluster/src/parallel.rs:
crates/cluster/src/roofline.rs:
crates/cluster/src/training.rs:
