//! End-to-end throughput: Figure 1(b) breakdown, Figure 11 (single-turn
//! math), Figure 12 (multi-turn tool calling), with speedups and scaling
//! efficiency (§8.1).

use crate::experiments::Opts;
use crate::table::{f2, tokens_per_sec, TextTable};
use laminar_baselines::verl::sync_breakdown;
use laminar_cluster::ModelSpec;
use laminar_core::SystemKind;
use laminar_workload::{Checkpoint, WorkloadGenerator};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Figure 1(b): generation/training time breakdown under the synchronous
/// system, single-turn vs multi-turn.
pub fn fig1b(opts: &Opts) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1(b) — RL iteration time breakdown (synchronous system)\n"
    );
    let mut t = TextTable::new(vec![
        "task",
        "generation %",
        "training %",
        "experience prep %",
    ]);
    for (name, workload) in [
        (
            "single-turn (math)",
            WorkloadGenerator::single_turn(opts.seed, Checkpoint::Math7B),
        ),
        (
            "multi-turn (tool-calling)",
            WorkloadGenerator::multi_turn(opts.seed),
        ),
    ] {
        // At production scale training shrinks with GPU count while the
        // generation makespan stays tail-bound, so the split is measured on
        // a large colocated allocation, as in the paper's setting.
        let total = if opts.quick { 64 } else { 256 };
        let mut cfg = opts.config(SystemKind::Verl, ModelSpec::qwen_7b(), total, workload);
        cfg.train_gpus = 0;
        let (gen, train, prep) = sync_breakdown(&cfg);
        let total = gen + train + prep;
        t.row(vec![
            name.to_string(),
            f2(gen / total * 100.0),
            f2(train / total * 100.0),
            f2(prep / total * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper: generation accounts for up to 83.1% of iteration time and experience\n\
         preparation only ~7.3%; multi-turn is even more generation-bound.\n",
    );
    out
}

fn throughput_grid(
    opts: &Opts,
    workload_for: impl Fn(u64) -> WorkloadGenerator,
    models: &[ModelSpec],
) -> String {
    let mut out = String::new();
    let systems = SystemKind::all();
    // Fan the whole model × scale × system grid across `opts.jobs` workers.
    // Keys and reports line up index-for-index (run_grid preserves input
    // order), and results live in a BTreeMap so every later iteration over
    // them is in key order — a HashMap here would make the averages table
    // depend on hashing order and break byte-identical reports.
    let mut keys: Vec<(String, usize, &'static str)> = Vec::new();
    let mut runs = Vec::new();
    for model in models {
        for total in opts.scales(model) {
            for kind in systems {
                keys.push((model.name.clone(), total, kind.name()));
                runs.push((
                    kind,
                    opts.config(kind, model.clone(), total, workload_for(opts.seed)),
                ));
            }
        }
    }
    let reports = opts.run_grid(runs);
    let results: BTreeMap<(String, usize, &'static str), f64> = keys
        .into_iter()
        .zip(&reports)
        .map(|(k, r)| (k, r.throughput))
        .collect();
    for model in models {
        let scales = opts.scales(model);
        let mut t = TextTable::new({
            let mut h: Vec<String> = vec![format!("{} GPUs", model.name)];
            h.extend(systems.iter().map(|s| s.name().to_string()));
            h.push("Laminar speedup".into());
            h
        });
        for &total in &scales {
            let mut row = vec![total.to_string()];
            let mut best_baseline = 0.0f64;
            let mut laminar = 0.0f64;
            for kind in systems {
                let tp = results[&(model.name.clone(), total, kind.name())];
                row.push(tokens_per_sec(tp));
                if kind == SystemKind::Laminar {
                    laminar = tp;
                } else {
                    best_baseline = best_baseline.max(tp);
                }
            }
            row.push(format!("{:.2}x vs best", laminar / best_baseline.max(1e-9)));
            t.row(row);
        }
        out.push_str(&t.render());
        // Scaling efficiency: (Tp_max / Tp_min) / (G_max / G_min).
        let gmin = scales[0] as f64;
        let gmax = *scales.last().expect("non-empty") as f64;
        let mut eff = TextTable::new(vec!["system", "scaling efficiency"]);
        for kind in systems {
            let lo = results[&(model.name.clone(), scales[0], kind.name())];
            let hi = results[&(model.name.clone(), *scales.last().unwrap(), kind.name())];
            eff.row(vec![
                kind.name().to_string(),
                format!("{:.1}%", hi / lo / (gmax / gmin) * 100.0),
            ]);
        }
        out.push('\n');
        out.push_str(&eff.render());
        out.push('\n');
    }
    // Average speedups over each baseline across the grid.
    let mut avg = TextTable::new(vec!["Laminar vs", "avg speedup", "max speedup"]);
    for kind in systems.iter().filter(|k| **k != SystemKind::Laminar) {
        let mut ratios = Vec::new();
        for ((m, s, sys), &tp) in &results {
            if *sys == kind.name() {
                let lam = results[&(m.clone(), *s, SystemKind::Laminar.name())];
                ratios.push(lam / tp.max(1e-9));
            }
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        avg.row(vec![
            kind.name().to_string(),
            format!("{mean:.2}x"),
            format!("{max:.2}x"),
        ]);
    }
    out.push_str(&avg.render());
    out
}

/// Figure 11: training throughput on single-turn math, all model scales.
pub fn fig11(opts: &Opts) -> String {
    let mut out = String::from("Figure 11 — training throughput, single-turn math\n\n");
    let models = if opts.quick {
        vec![ModelSpec::qwen_7b(), ModelSpec::qwen_32b()]
    } else {
        ModelSpec::paper_models()
    };
    let grid = throughput_grid(
        opts,
        |seed| WorkloadGenerator::single_turn(seed, Checkpoint::Math7B),
        &models,
    );
    out.push_str(&grid);
    out.push_str(
        "\npaper: Laminar averages 2.56x over verl (up to 5.49x), ~1.9x over the k=1\n\
         pipelines, 1.39x over AReaL, with the gap widening at scale; scaling\n\
         efficiency 53.7% vs at most 33.6% for the best baseline.\n",
    );
    out
}

/// Figure 12: training throughput on multi-turn tool calling (7B).
pub fn fig12(opts: &Opts) -> String {
    let mut out = String::from("Figure 12 — training throughput, multi-turn tool calling (7B)\n\n");
    let models = vec![ModelSpec::qwen_7b()];
    let grid = throughput_grid(opts, WorkloadGenerator::multi_turn, &models);
    out.push_str(&grid);
    out.push_str(
        "\npaper: Laminar averages 2.62x across baselines on tool calling; environment\n\
         latency variance makes the global-sync baselines even more straggler-bound.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1b_generation_dominates() {
        let s = fig1b(&Opts::default());
        assert!(s.contains("single-turn"));
        assert!(s.contains("multi-turn"));
    }
}
