/root/repo/target/debug/examples/tool_calling-c96ac22c8acef429.d: examples/tool_calling.rs

/root/repo/target/debug/examples/tool_calling-c96ac22c8acef429: examples/tool_calling.rs

examples/tool_calling.rs:
