//! In-tree benchmark harness behind `laminar-experiments --bench`.
//!
//! Three measurements, written as a small JSON document
//! (`BENCH_rollout.json` at the repo root by default) so successive runs
//! can be diffed by `scripts/bench.sh`:
//!
//! - **micro**: the replica-engine hot path. The same trajectory batch is
//!   run to completion on the retained naive full-scan reference engine,
//!   on the slab-indexed O(1)-per-event engine, and on the slab engine
//!   with span tracing enabled (spans serialized to JSONL through one
//!   reusable buffer). Each leg is scored in processed events per second
//!   of wall clock.
//! - **allocs**: alongside each micro leg, the counting global allocator
//!   (see [`crate::alloc_count`]) reports allocator round trips per
//!   engine event and the peak live-bytes excursion — a peak-RSS proxy.
//!   The counters only read nonzero under the `laminar-experiments`
//!   binary, which registers the wrapper; `alloc_counting_active` records
//!   whether the numbers are live or the harness ran unregistered.
//! - **e2e**: the experiment suite. The same experiment list runs once
//!   with `jobs = 1` and once with the requested job count, timing wall
//!   clock for each; the ratio is the parallel-executor speedup. When the
//!   request resolves to one worker anyway (see
//!   [`crate::runner::effective_jobs`] — e.g. a 1-CPU machine), the
//!   parallel leg IS the serial leg: both would execute the identical
//!   inline code path, so the serial timing is reused and the reported
//!   speedup is exactly 1.0 instead of thread-pool noise. The recorded
//!   `available_parallelism` and `effective_jobs` label such rows.
//!
//! - **shards**: the conservative-lookahead sharded driver's scaling
//!   curve. One fixed Laminar system run is repeated at shard counts 1,
//!   2, 4, and 8 (requested raw, not clamped — on a small machine the
//!   extra workers timeshare, and the point of the curve is the sharded
//!   code path itself), recording wall seconds per shard count plus a
//!   determinism verdict: every leg's report debug string and JSONL event
//!   trace must be byte-identical to the serial leg's. A `false` there is
//!   a correctness bug, never noise.
//!
//! - **checkpoint**: the incremental-checkpoint cost profile. The
//!   recovery-scenario Laminar run (faults on, trace recording on) runs
//!   through `check_resume_equivalence` at a fixed 20 s cadence: every
//!   cadence point commits a delta checkpoint into the content-addressed
//!   store AND is resumed to completion, so the block carries both the
//!   equivalence verdict (`delta_identical`) and the byte economics —
//!   delta bytes vs whole-state bytes per cadence point, the steady-state
//!   ratio at the final cadence point, and chunk reuse counts. The
//!   verdict is deterministic; a `false` is a correctness regression.
//!
//! - **fleet**: the fleet control-plane profile. The `fleet` experiment's
//!   acceptance scenario (a mid-run cell kill with a straggler and a
//!   router partition layered on, 4 cells, 3 tenant classes) supplies the
//!   headline numbers — goodput retained through the kill, measured
//!   fleet-MTTR, starvation margin, invariant violations — and the
//!   fleet-chaos sweep is serialized at `--jobs 1` and a parallel job
//!   count to produce the `jobs_deterministic` verdict. Both are
//!   deterministic; `scripts/bench.sh` hard-fails on
//!   `"jobs_deterministic": false` even under `--warn-only`.
//!
//! The JSON is hand-rolled (the workspace is dependency-free); the schema
//! is documented in the README and stamped with a `schema` version so the
//! diff script can reject incompatible files. Schema 3 adds the
//! `shard_curve` block; schema 4 adds the `checkpoint` block; schema 5
//! adds the `fleet` block (acceptance-scenario dip/MTTR/starvation plus
//! the `jobs_deterministic` verdict over the fleet-chaos sweep); schema 6
//! adds the `window_stats` block inside `shard_curve` (barriers per run,
//! central events per fence window, batch sizes — the fence-batching
//! driver's parallel-window profile) plus per-shard allocation counts.
//! Every earlier key name is kept so existing diff tooling keeps working.

use crate::alloc_count::{self, AllocStats};
use crate::experiments::{all_experiment_ids, run_experiment, Opts};
use crate::runner::effective_jobs;
use laminar_cluster::{DecodeModel, GpuSpec, ModelSpec};
use laminar_core::{placement_for, LaminarSystem, SystemKind, WindowStats};
use laminar_rollout::{EngineConfig, NaiveReplicaEngine, ReplicaEngine};
use laminar_runtime::{RecordingTrace, SystemConfig};
use laminar_sim::{ThroughputMeter, Time};
use laminar_workload::{Checkpoint, WorkloadGenerator};
use std::fmt::Write as _;
use std::path::Path;

/// One micro-benchmark leg: throughput plus allocation accounting.
#[derive(Debug, Clone, Copy)]
pub struct MicroLeg {
    /// Processed engine events per wall-clock second.
    pub events_per_sec: f64,
    /// Allocator round trips per processed engine event (0 when the
    /// counting allocator is not registered).
    pub allocs_per_event: f64,
    /// Peak live-heap excursion during the leg, bytes (peak-RSS proxy).
    pub peak_bytes: u64,
}

impl MicroLeg {
    fn from_run(events: u64, secs: f64, stats: AllocStats) -> Self {
        MicroLeg {
            events_per_sec: events as f64 / secs.max(1e-12),
            allocs_per_event: stats.allocs as f64 / events.max(1) as f64,
            peak_bytes: stats.peak_bytes,
        }
    }
}

/// One point of the sharded-driver scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct ShardPoint {
    /// Requested shard count (worker threads between lookahead fences).
    pub shards: usize,
    /// Wall seconds for the fixed system run at this shard count.
    pub secs: f64,
    /// Fence-window profile of the run (all-zero on the serial driver,
    /// which fences nothing).
    pub stats: WindowStats,
    /// Allocator round trips during the run (0 when the counting
    /// allocator is not registered).
    pub allocs: u64,
}

/// Serial-over-best-sharded wall-clock ratio across `curve` (1.0 when no
/// comparison is possible).
fn shard_speedup(curve: &[ShardPoint]) -> f64 {
    let serial = curve.iter().find(|p| p.shards == 1).map(|p| p.secs);
    let best = curve
        .iter()
        .filter(|p| p.shards > 1)
        .map(|p| p.secs)
        .min_by(f64::total_cmp);
    match (serial, best) {
        (Some(s), Some(b)) => s / b.max(1e-12),
        _ => 1.0,
    }
}

/// Writes the schema-6 `window_stats` object (keys per sharded point) at
/// `indent`, shared by the full bench report and the standalone
/// shard-curve report.
fn write_window_stats_block(s: &mut String, indent: &str, curve: &[ShardPoint]) {
    let sharded: Vec<&ShardPoint> = curve.iter().filter(|p| p.shards > 1).collect();
    let by = |f: &dyn Fn(&ShardPoint) -> String| -> String {
        sharded
            .iter()
            .map(|p| format!("\"{}\": {}", p.shards, f(p)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(s, "{indent}\"window_stats\": {{");
    let _ = writeln!(
        s,
        "{indent}  \"barriers_by_shards\": {{{}}},",
        by(&|p| format!("{}", p.stats.barriers))
    );
    let _ = writeln!(
        s,
        "{indent}  \"events_per_window_by_shards\": {{{}}},",
        by(&|p| format!("{:.3}", p.stats.events_per_window()))
    );
    let _ = writeln!(
        s,
        "{indent}  \"batched_windows_by_shards\": {{{}}},",
        by(&|p| format!("{}", p.stats.batched_windows))
    );
    let _ = writeln!(
        s,
        "{indent}  \"max_batch_by_shards\": {{{}}},",
        by(&|p| format!("{}", p.stats.max_batch))
    );
    let _ = writeln!(
        s,
        "{indent}  \"handoff_replays_by_shards\": {{{}}},",
        by(&|p| format!("{}", p.stats.handoff_replays))
    );
    let _ = writeln!(
        s,
        "{indent}  \"allocs_by_shards\": {{{}}}",
        by(&|p| format!("{}", p.allocs))
    );
    let _ = writeln!(s, "{indent}}}");
}

/// The standalone shard-curve leg — the CI multi-core datapoint. Same
/// measurement as the `shard_curve` block of the full bench report, with
/// its own small schema-6 JSON wrapper so the curve can run (and upload)
/// in seconds without the rest of the suite.
#[derive(Debug, Clone)]
pub struct ShardCurveReport {
    /// `"smoke"` or `"full"`.
    pub mode: &'static str,
    /// The machine's available parallelism at run time.
    pub available_parallelism: usize,
    /// See [`BenchReport::shard_curve`].
    pub points: Vec<ShardPoint>,
    /// See [`BenchReport::shard_deterministic`].
    pub deterministic: bool,
}

impl ShardCurveReport {
    /// Serial-over-best-sharded wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        shard_speedup(&self.points)
    }

    /// Serializes the standalone report (a `shard_curve` block plus run
    /// context, same schema-6 keys as the full bench report).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": 6,");
        let _ = writeln!(s, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(
            s,
            "  \"available_parallelism\": {},",
            self.available_parallelism
        );
        let _ = writeln!(s, "  \"shard_curve\": {{");
        let secs: Vec<String> = self
            .points
            .iter()
            .map(|p| format!("\"{}\": {:.3}", p.shards, p.secs))
            .collect();
        let _ = writeln!(s, "    \"secs_by_shards\": {{{}}},", secs.join(", "));
        let _ = writeln!(s, "    \"deterministic\": {},", self.deterministic);
        let _ = writeln!(s, "    \"speedup\": {:.2},", self.speedup());
        write_window_stats_block(&mut s, "    ", &self.points);
        let _ = writeln!(s, "  }}");
        let _ = writeln!(s, "}}");
        s
    }

    /// Human-readable summary for the terminal.
    pub fn summary(&self) -> String {
        let points = self
            .points
            .iter()
            .map(|p| format!("{}:{:.2}s", p.shards, p.secs))
            .collect::<Vec<_>>()
            .join(" | ");
        let windows = self
            .points
            .iter()
            .filter(|p| p.shards > 1)
            .map(|p| {
                format!(
                    "{}: {} barriers, {:.2} ev/window, max batch {}",
                    p.shards,
                    p.stats.barriers,
                    p.stats.events_per_window(),
                    p.stats.max_batch
                )
            })
            .collect::<Vec<_>>()
            .join(" | ");
        format!(
            "shards: {points} | {:.2}x | deterministic: {} | cores {}\n\
             window: {windows}",
            self.speedup(),
            self.deterministic,
            self.available_parallelism,
        )
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Runs only the shard-curve leg with allocation accounting bracketed
/// around it. See [`ShardCurveReport`].
pub fn run_shard_curve(smoke: bool) -> ShardCurveReport {
    alloc_count::enable();
    let (points, deterministic) = time_shard_curve(smoke);
    alloc_count::disable();
    ShardCurveReport {
        mode: if smoke { "smoke" } else { "full" },
        available_parallelism: crate::runner::default_jobs(),
        points,
        deterministic,
    }
}

/// Checkpoint-cost profile of the recovery-scenario run (see the module
/// docs): equivalence verdict plus delta-vs-whole-state byte economics.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointBench {
    /// Cadence points committed (and resumed from) during the run.
    pub points: usize,
    /// True when the delta-checkpointed run, every resume, and every
    /// fingerprint verification matched the uninterrupted run byte for
    /// byte. Deterministic — `false` is a correctness regression.
    pub delta_identical: bool,
    /// Mean bytes persisted per cadence point by the delta store (new
    /// chunk payloads plus the manifest).
    pub delta_bytes_per_point: u64,
    /// Mean bytes a whole-state snapshot of the same image would have
    /// persisted per cadence point.
    pub whole_bytes_per_point: u64,
    /// The final commit's delta bytes — the steady-state per-cadence cost
    /// once the run is warm.
    pub steady_delta_bytes: u64,
    /// The final image's total bytes — what a whole-state snapshot would
    /// still be writing at that point.
    pub steady_whole_bytes: u64,
    /// Chunks across all commits, and how many were deduplicated against
    /// the store instead of persisted again.
    pub chunks_total: u64,
    /// See [`CheckpointBench::chunks_total`].
    pub chunks_reused: u64,
}

impl CheckpointBench {
    /// Steady-state whole-over-delta byte ratio: how many times cheaper
    /// the incremental checkpoint is once the run is warm.
    pub fn delta_ratio(&self) -> f64 {
        if self.steady_delta_bytes == 0 {
            return 1.0;
        }
        self.steady_whole_bytes as f64 / self.steady_delta_bytes as f64
    }
}

/// Fleet control-plane profile: the `fleet` experiment's acceptance
/// scenario (mid-run cell kill with a straggler and a router partition
/// layered on) plus a jobs-invariance verdict over the
/// `specs/fleet-chaos.toml` sweep.
#[derive(Debug, Clone, Copy)]
pub struct FleetBench {
    /// Cells behind the admission router in the acceptance scenario.
    pub cells: usize,
    /// Goodput retained through the scenario's isolated cell kill
    /// (trough/baseline; 1.0 would mean no measurable dip).
    pub goodput_retained: f64,
    /// Measured fleet-MTTR for that kill: seconds until goodput regained
    /// 70% of its pre-kill baseline.
    pub fleet_mttr_secs: f64,
    /// Minimum per-tenant completion-share margin across the 3-class mix.
    pub starvation_margin: f64,
    /// Fleet invariant violations (exactly-once, starvation floor,
    /// quarantine admissions, dip bounds). Deterministic — any nonzero
    /// count is a correctness bug.
    pub violations: usize,
    /// True when the fleet-chaos sweep's rows JSONL is byte-identical at
    /// `--jobs 1` and a parallel job count. Deterministic by design —
    /// `false` is a correctness regression, never noise.
    pub jobs_deterministic: bool,
}

/// Results of one `--bench` invocation.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"smoke"` or `"full"`.
    pub mode: &'static str,
    /// Worker threads requested for the parallel e2e leg.
    pub jobs: usize,
    /// The machine's available parallelism at run time.
    pub available_parallelism: usize,
    /// Whether the counting global allocator was live for the micro legs
    /// (false when the harness runs without the wrapper registered, e.g.
    /// under `cargo test` — allocation columns then read zero).
    pub alloc_counting_active: bool,
    /// Trajectories in the micro-benchmark batch.
    pub micro_trajectories: usize,
    /// Naive full-scan reference engine, untraced.
    pub naive: MicroLeg,
    /// Slab-indexed engine, untraced.
    pub indexed: MicroLeg,
    /// Slab-indexed engine with span tracing + JSONL serialization.
    pub traced: MicroLeg,
    /// Sharded-driver scaling curve: wall seconds for one fixed Laminar
    /// system run at each shard count, serial (1) first.
    pub shard_curve: Vec<ShardPoint>,
    /// True when every shard count produced the byte-identical report and
    /// JSONL event trace the serial driver did. Deterministic by design —
    /// `false` is a correctness regression, not noise.
    pub shard_deterministic: bool,
    /// Incremental-checkpoint cost profile of the recovery scenario.
    pub checkpoint: CheckpointBench,
    /// Fleet control-plane profile (acceptance scenario + jobs-invariance
    /// verdict of the fleet-chaos sweep).
    pub fleet: FleetBench,
    /// Experiment ids timed in the e2e leg.
    pub e2e_experiments: Vec<String>,
    /// Per-experiment wall clock from the serial leg, seconds, aligned
    /// with [`BenchReport::e2e_experiments`]. Serial timings are the
    /// meaningful per-id numbers — parallel legs overlap experiments, so
    /// only their total is comparable.
    pub experiment_secs: Vec<f64>,
    /// What the `jobs` request resolved to for the e2e list.
    pub e2e_effective_jobs: usize,
    /// Wall clock for the `jobs = 1` e2e leg, seconds.
    pub serial_secs: f64,
    /// Wall clock for the `jobs = N` e2e leg, seconds. Equal to
    /// [`BenchReport::serial_secs`] by construction when
    /// [`BenchReport::e2e_effective_jobs`] is 1 (same inline code path).
    pub parallel_secs: f64,
}

impl BenchReport {
    /// Indexed-over-naive events/sec ratio.
    pub fn micro_speedup(&self) -> f64 {
        self.indexed.events_per_sec / self.naive.events_per_sec.max(1e-12)
    }

    /// Serial-over-parallel wall-clock ratio.
    pub fn e2e_speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-12)
    }

    /// Serial-over-best-sharded wall-clock ratio (1.0 when the curve is
    /// empty). Below 1.0 on machines where the shard workers timeshare a
    /// single core — the determinism verdict is the load-bearing output
    /// there.
    pub fn shard_speedup(&self) -> f64 {
        shard_speedup(&self.shard_curve)
    }

    /// Serializes the report (see README for the schema).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": 6,");
        let _ = writeln!(s, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(
            s,
            "  \"available_parallelism\": {},",
            self.available_parallelism
        );
        let _ = writeln!(
            s,
            "  \"alloc_counting_active\": {},",
            self.alloc_counting_active
        );
        let _ = writeln!(s, "  \"micro\": {{");
        let _ = writeln!(s, "    \"trajectories\": {},", self.micro_trajectories);
        let _ = writeln!(
            s,
            "    \"naive_events_per_sec\": {:.1},",
            self.naive.events_per_sec
        );
        let _ = writeln!(
            s,
            "    \"indexed_events_per_sec\": {:.1},",
            self.indexed.events_per_sec
        );
        let _ = writeln!(
            s,
            "    \"traced_events_per_sec\": {:.1},",
            self.traced.events_per_sec
        );
        let _ = writeln!(
            s,
            "    \"naive_allocs_per_event\": {:.3},",
            self.naive.allocs_per_event
        );
        let _ = writeln!(
            s,
            "    \"indexed_allocs_per_event\": {:.3},",
            self.indexed.allocs_per_event
        );
        let _ = writeln!(
            s,
            "    \"traced_allocs_per_event\": {:.3},",
            self.traced.allocs_per_event
        );
        let _ = writeln!(s, "    \"naive_peak_bytes\": {},", self.naive.peak_bytes);
        let _ = writeln!(
            s,
            "    \"indexed_peak_bytes\": {},",
            self.indexed.peak_bytes
        );
        let _ = writeln!(s, "    \"traced_peak_bytes\": {},", self.traced.peak_bytes);
        let _ = writeln!(s, "    \"speedup\": {:.2}", self.micro_speedup());
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"shard_curve\": {{");
        let secs: Vec<String> = self
            .shard_curve
            .iter()
            .map(|p| format!("\"{}\": {:.3}", p.shards, p.secs))
            .collect();
        let _ = writeln!(s, "    \"secs_by_shards\": {{{}}},", secs.join(", "));
        let _ = writeln!(s, "    \"deterministic\": {},", self.shard_deterministic);
        let _ = writeln!(s, "    \"speedup\": {:.2},", self.shard_speedup());
        write_window_stats_block(&mut s, "    ", &self.shard_curve);
        let _ = writeln!(s, "  }},");
        let c = &self.checkpoint;
        let _ = writeln!(s, "  \"checkpoint\": {{");
        let _ = writeln!(s, "    \"points\": {},", c.points);
        let _ = writeln!(s, "    \"delta_identical\": {},", c.delta_identical);
        let _ = writeln!(
            s,
            "    \"delta_bytes_per_point\": {},",
            c.delta_bytes_per_point
        );
        let _ = writeln!(
            s,
            "    \"whole_bytes_per_point\": {},",
            c.whole_bytes_per_point
        );
        let _ = writeln!(s, "    \"steady_delta_bytes\": {},", c.steady_delta_bytes);
        let _ = writeln!(s, "    \"steady_whole_bytes\": {},", c.steady_whole_bytes);
        let _ = writeln!(s, "    \"chunks_total\": {},", c.chunks_total);
        let _ = writeln!(s, "    \"chunks_reused\": {},", c.chunks_reused);
        let _ = writeln!(s, "    \"delta_ratio\": {:.2}", c.delta_ratio());
        let _ = writeln!(s, "  }},");
        let f = &self.fleet;
        let _ = writeln!(s, "  \"fleet\": {{");
        let _ = writeln!(s, "    \"cells\": {},", f.cells);
        let _ = writeln!(s, "    \"goodput_retained\": {:.3},", f.goodput_retained);
        let _ = writeln!(s, "    \"fleet_mttr_secs\": {:.1},", f.fleet_mttr_secs);
        let _ = writeln!(s, "    \"starvation_margin\": {:.3},", f.starvation_margin);
        let _ = writeln!(s, "    \"violations\": {},", f.violations);
        let _ = writeln!(s, "    \"jobs_deterministic\": {}", f.jobs_deterministic);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"e2e\": {{");
        let ids: Vec<String> = self
            .e2e_experiments
            .iter()
            .map(|id| format!("\"{id}\""))
            .collect();
        let _ = writeln!(s, "    \"experiments\": [{}],", ids.join(", "));
        let secs: Vec<String> = self
            .e2e_experiments
            .iter()
            .zip(&self.experiment_secs)
            .map(|(id, secs)| format!("\"{id}\": {secs:.3}"))
            .collect();
        let _ = writeln!(s, "    \"experiment_secs\": {{{}}},", secs.join(", "));
        let _ = writeln!(s, "    \"effective_jobs\": {},", self.e2e_effective_jobs);
        let _ = writeln!(s, "    \"serial_secs\": {:.3},", self.serial_secs);
        let _ = writeln!(s, "    \"parallel_secs\": {:.3},", self.parallel_secs);
        let _ = writeln!(s, "    \"speedup\": {:.2}", self.e2e_speedup());
        let _ = writeln!(s, "  }}");
        let _ = writeln!(s, "}}");
        s
    }

    /// Human-readable summary for the terminal.
    pub fn summary(&self) -> String {
        let alloc_note = if self.alloc_counting_active {
            format!(
                "allocs: naive {:.2}/ev | indexed {:.2}/ev | traced {:.2}/ev",
                self.naive.allocs_per_event,
                self.indexed.allocs_per_event,
                self.traced.allocs_per_event,
            )
        } else {
            "allocs: counting allocator not registered (columns read zero)".to_string()
        };
        let shard_note = self
            .shard_curve
            .iter()
            .map(|p| format!("{}:{:.2}s", p.shards, p.secs))
            .collect::<Vec<_>>()
            .join(" | ");
        let window_note = self
            .shard_curve
            .iter()
            .filter(|p| p.shards > 1)
            .map(|p| {
                format!(
                    "{}: {} barriers, {:.2} ev/window, max batch {}",
                    p.shards,
                    p.stats.barriers,
                    p.stats.events_per_window(),
                    p.stats.max_batch
                )
            })
            .collect::<Vec<_>>()
            .join(" | ");
        format!(
            "micro : {} trajectories | naive {:>10.0} ev/s | indexed {:>10.0} ev/s | traced {:>10.0} ev/s | {:.2}x\n\
             {alloc_note}\n\
             shards: {shard_note} | {:.2}x | deterministic: {}\n\
             window: {window_note}\n\
             ckpt  : {} points | delta {}B/pt vs whole {}B/pt | steady {:.2}x | reused {}/{} chunks | identical: {}\n\
             fleet : {} cells | retained {:.3} | MTTR {:.1}s | starvation {:.2} | violations {} | jobs-deterministic: {}\n\
             e2e   : {} experiments | serial {:.2}s | --jobs {} (effective {}) {:.2}s | {:.2}x",
            self.micro_trajectories,
            self.naive.events_per_sec,
            self.indexed.events_per_sec,
            self.traced.events_per_sec,
            self.micro_speedup(),
            self.shard_speedup(),
            self.shard_deterministic,
            self.checkpoint.points,
            self.checkpoint.delta_bytes_per_point,
            self.checkpoint.whole_bytes_per_point,
            self.checkpoint.delta_ratio(),
            self.checkpoint.chunks_reused,
            self.checkpoint.chunks_total,
            self.checkpoint.delta_identical,
            self.fleet.cells,
            self.fleet.goodput_retained,
            self.fleet.fleet_mttr_secs,
            self.fleet.starvation_margin,
            self.fleet.violations,
            self.fleet.jobs_deterministic,
            self.e2e_experiments.len(),
            self.serial_secs,
            self.jobs,
            self.e2e_effective_jobs,
            self.parallel_secs,
            self.e2e_speedup(),
        )
    }

    /// Writes the JSON report to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The single-turn batch all engine legs are scored on: every trajectory
/// fully resident (default concurrency is 1024), one mid-flight weight
/// interrupt to exercise the repack path.
fn micro_batch(n: usize) -> Vec<laminar_workload::TrajectorySpec> {
    let workload = WorkloadGenerator::single_turn(11, Checkpoint::Math7B);
    (0..n as u64)
        .map(|i| workload.trajectory(i, i / 16, (i % 16) as usize, 1.0))
        .collect()
}

fn decode() -> DecodeModel {
    DecodeModel::new(ModelSpec::qwen_7b(), GpuSpec::h800(), 1)
}

/// Runs the batch to completion on the naive reference engine, returning
/// (events processed, wall seconds).
fn time_naive(specs: &[laminar_workload::TrajectorySpec], repeats: u32) -> (u64, f64) {
    let mut meter = ThroughputMeter::new();
    for _ in 0..repeats {
        let mut e = NaiveReplicaEngine::new(decode(), EngineConfig::default());
        for s in specs {
            e.submit(s.clone(), Time::ZERO);
        }
        e.interrupt_with_weights(1, Time::from_secs(30));
        while let Some(t) = e.next_event_time() {
            e.advance_to(t);
        }
        meter.add(e.events_processed());
        std::hint::black_box(e.completed_count());
    }
    (meter.events(), meter.elapsed_secs())
}

/// Same schedule on the slab-indexed engine. With `traced`, per-phase span
/// recording is on and every repeat serializes its spans to JSONL through
/// one reusable buffer — the full cost of the streaming trace pipeline.
fn time_indexed(
    specs: &[laminar_workload::TrajectorySpec],
    repeats: u32,
    traced: bool,
) -> (u64, f64) {
    let cfg = EngineConfig {
        record_trace: traced,
        ..EngineConfig::default()
    };
    let mut jsonl = String::new();
    let mut meter = ThroughputMeter::new();
    for _ in 0..repeats {
        let mut e = ReplicaEngine::new(0, decode(), cfg.clone());
        for s in specs {
            e.submit(s.clone(), Time::ZERO);
        }
        e.interrupt_with_weights(1, Time::from_secs(30));
        while let Some(t) = e.next_event_time() {
            e.advance_to(t);
        }
        meter.add(e.events_processed());
        std::hint::black_box(e.completed_count());
        if traced {
            jsonl.clear();
            e.drain_trace_spans(&mut |spans| {
                for sp in spans {
                    sp.write_json(&mut jsonl)
                        .expect("fmt::Write on String is infallible");
                    jsonl.push('\n');
                }
            });
            std::hint::black_box(jsonl.len());
        }
    }
    (meter.events(), meter.elapsed_secs())
}

/// Measures the sharded-driver scaling curve: one fixed Laminar system run
/// repeated at each shard count, returning the points plus the determinism
/// verdict (report debug string and JSONL trace byte-identical to the
/// serial leg at every count). Each point carries the fence-window profile
/// and, when the counting allocator is registered, the run's allocator
/// round trips — the guard on the zero-alloc window hot loop: the sharded
/// driver reuses World-owned scratch (eligibility flags, completion-head
/// arena, wake arenas) across windows, so its allocation count must stay
/// within a small factor of the serial driver's instead of growing by
/// O(allocs × barriers).
fn time_shard_curve(smoke: bool) -> (Vec<ShardPoint>, bool) {
    let model = ModelSpec::qwen_7b();
    let p = placement_for(SystemKind::Laminar, &model, 16);
    let mut cfg = SystemConfig::new(
        model,
        p.train,
        p.rollout,
        p.tp,
        WorkloadGenerator::single_turn(11, Checkpoint::Math7B),
    );
    cfg.iterations = if smoke { 2 } else { 3 };
    cfg.warmup = 0;
    let mut curve: Vec<ShardPoint> = Vec::new();
    let mut fingerprint: Option<(String, String)> = None;
    let mut deterministic = true;
    for shards in [1usize, 2, 4, 8] {
        let sys = LaminarSystem {
            shards,
            ..LaminarSystem::default()
        };
        let mut trace = RecordingTrace::new();
        let start = std::time::Instant::now();
        let ((report, stats), alloc_stats) =
            alloc_count::measure(|| sys.run_traced_stats(&cfg, &mut trace));
        let secs = start.elapsed().as_secs_f64();
        let fp = (format!("{report:?}"), trace.to_jsonl());
        match &fingerprint {
            None => fingerprint = Some(fp),
            Some(serial) => deterministic &= *serial == fp,
        }
        curve.push(ShardPoint {
            shards,
            secs,
            stats,
            allocs: alloc_stats.allocs,
        });
    }
    if alloc_count::is_active() {
        let serial_allocs = curve[0].allocs.max(1);
        for p in curve.iter().filter(|p| p.shards > 1) {
            assert!(
                p.allocs <= serial_allocs.saturating_mul(3) / 2 + 64 * p.shards as u64,
                "sharded window loop is no longer allocation-free: \
                 {} allocs at shards={} vs {} serial (a per-window scratch \
                 allocation regressed — see World::advance_shards)",
                p.allocs,
                p.shards,
                serial_allocs
            );
        }
    }
    (curve, deterministic)
}

/// Profiles incremental-checkpoint cost on the recovery scenario: the
/// chaos-laden Laminar replay config (trace recording on) run through
/// `check_resume_equivalence` at a 20 s cadence. Ten iterations put the
/// run well past warm-up, where accumulated state (spans, buffer,
/// report) dwarfs the per-cadence churn — the regime the steady-state
/// ratio is meant to measure. The run is small enough (sub-second in
/// release) that smoke mode keeps the full profile.
fn bench_checkpoints() -> CheckpointBench {
    let mut cfg = crate::experiments::recovery::replay_config(11, SystemKind::Laminar);
    cfg.iterations = 10;
    let eq = laminar_runtime::check_resume_equivalence(
        &LaminarSystem::default(),
        &cfg,
        laminar_sim::Duration::from_secs(20),
    );
    let c = &eq.cost;
    let points = c.points.max(1) as u64;
    CheckpointBench {
        points: c.points,
        delta_identical: eq.identical(),
        delta_bytes_per_point: c.delta_bytes / points,
        whole_bytes_per_point: c.whole_bytes / points,
        steady_delta_bytes: c.steady_delta_bytes,
        steady_whole_bytes: c.steady_whole_bytes,
        chunks_total: c.chunks_total as u64,
        chunks_reused: c.chunks_reused as u64,
    }
}

/// Profiles the fleet control plane: the `fleet` experiment's acceptance
/// scenario (kill + straggler + partition over 4 cells, 3 tenant classes)
/// for the headline dip/MTTR/starvation numbers, plus a jobs-invariance
/// check — the `specs/fleet-chaos.toml` sweep must serialize to the
/// byte-identical rows JSONL at `--jobs 1` and at a parallel job count.
fn bench_fleet(jobs: usize) -> FleetBench {
    let opts = Opts::default();
    let cfg = crate::experiments::fleet::acceptance_config(4, opts.seed);
    let run = laminar_fleet::run_fleet(&cfg);
    let spec = crate::experiments::fleet::fleet_spec(&opts);
    let serialize = |jobs: usize| {
        let rows = crate::lab::run_lab(
            &spec,
            &Opts {
                jobs,
                ..Opts::default()
            },
        );
        crate::lab::write_rows_jsonl(&spec.name, &rows)
    };
    let jobs_deterministic = serialize(1) == serialize(jobs.max(2));
    FleetBench {
        cells: cfg.cells,
        goodput_retained: run.report.goodput_retained,
        fleet_mttr_secs: run.report.mttr_max_secs,
        starvation_margin: run.report.starvation_margin,
        violations: run.violations().len(),
        jobs_deterministic,
    }
}

/// Times one pass over `ids` with the given job count, returning total
/// wall seconds plus per-experiment wall seconds in id order. Reports are
/// black-boxed; results/traces are not written.
fn time_e2e(ids: &[String], jobs: usize) -> (f64, Vec<f64>) {
    let opts = Opts {
        jobs,
        ..Opts::default()
    };
    let start = std::time::Instant::now();
    // Outer fan-out over experiment ids mirrors the binary's `all` path;
    // each experiment's own grids additionally use `opts.jobs`.
    let reports = crate::runner::run_indexed(ids.to_vec(), jobs, |_, id| {
        let t0 = std::time::Instant::now();
        let report = run_experiment(&id, &opts);
        (report, t0.elapsed().as_secs_f64())
    });
    let mut per_id = Vec::with_capacity(reports.len());
    for (r, secs) in &reports {
        std::hint::black_box(r.len());
        per_id.push(*secs);
    }
    (start.elapsed().as_secs_f64(), per_id)
}

/// Runs the benchmark suite. `smoke` shrinks the batch and the experiment
/// list so the whole thing finishes in a few seconds (used by lint/CI).
pub fn run_bench(smoke: bool, jobs: usize) -> BenchReport {
    let (n, repeats) = if smoke { (96, 2) } else { (512, 3) };
    let specs = micro_batch(n);
    // Allocation accounting brackets only the single-threaded micro legs:
    // the process-global counters would otherwise mix in e2e worker-thread
    // noise and mean nothing per-event.
    alloc_count::enable();
    let ((naive_events, naive_secs), naive_stats) =
        alloc_count::measure(|| time_naive(&specs, repeats));
    let ((indexed_events, indexed_secs), indexed_stats) =
        alloc_count::measure(|| time_indexed(&specs, repeats, false));
    let ((traced_events, traced_secs), traced_stats) =
        alloc_count::measure(|| time_indexed(&specs, repeats, true));
    let alloc_counting_active = alloc_count::is_active();
    // The shard curve keeps the counter live: its legs run one at a time
    // (the scoped shard workers are part of the measured run), and the
    // serial-vs-sharded allocation comparison is the zero-alloc-window
    // regression guard.
    let (shard_curve, shard_deterministic) = time_shard_curve(smoke);
    alloc_count::disable();
    let checkpoint = bench_checkpoints();
    let fleet = bench_fleet(jobs);
    let e2e_ids: Vec<String> = if smoke {
        vec![
            "fig2".into(),
            "fig9".into(),
            "fig11".into(),
            "table2".into(),
        ]
    } else {
        all_experiment_ids().iter().map(|s| s.to_string()).collect()
    };
    let e2e_effective = effective_jobs(jobs, e2e_ids.len());
    let (serial_secs, experiment_secs) = time_e2e(&e2e_ids, 1);
    // One effective worker means the "parallel" leg is literally the serial
    // inline path; timing it again would only report scheduler noise as a
    // phantom slowdown, so the serial measurement is reused (speedup 1.0).
    let parallel_secs = if e2e_effective > 1 {
        time_e2e(&e2e_ids, jobs).0
    } else {
        serial_secs
    };
    BenchReport {
        mode: if smoke { "smoke" } else { "full" },
        jobs,
        available_parallelism: crate::runner::default_jobs(),
        alloc_counting_active,
        micro_trajectories: n,
        naive: MicroLeg::from_run(naive_events, naive_secs, naive_stats),
        indexed: MicroLeg::from_run(indexed_events, indexed_secs, indexed_stats),
        traced: MicroLeg::from_run(traced_events, traced_secs, traced_stats),
        shard_curve,
        shard_deterministic,
        checkpoint,
        fleet,
        e2e_experiments: e2e_ids,
        experiment_secs,
        e2e_effective_jobs: e2e_effective,
        serial_secs,
        parallel_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leg(ev: f64, allocs: f64, peak: u64) -> MicroLeg {
        MicroLeg {
            events_per_sec: ev,
            allocs_per_event: allocs,
            peak_bytes: peak,
        }
    }

    fn ckpt() -> CheckpointBench {
        CheckpointBench {
            points: 24,
            delta_identical: true,
            delta_bytes_per_point: 24000,
            whole_bytes_per_point: 86000,
            steady_delta_bytes: 21728,
            steady_whole_bytes: 137840,
            chunks_total: 11313,
            chunks_reused: 7388,
        }
    }

    fn fleet() -> FleetBench {
        FleetBench {
            cells: 4,
            goodput_retained: 0.851,
            fleet_mttr_secs: 25.0,
            starvation_margin: 1.0,
            violations: 0,
            jobs_deterministic: true,
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let r = BenchReport {
            mode: "smoke",
            jobs: 4,
            available_parallelism: 8,
            alloc_counting_active: true,
            micro_trajectories: 96,
            naive: leg(1000.0, 2.5, 4096),
            indexed: leg(3000.0, 0.125, 1024),
            traced: leg(2500.0, 0.25, 2048),
            shard_curve: vec![
                ShardPoint {
                    shards: 1,
                    secs: 2.0,
                    stats: WindowStats::default(),
                    allocs: 1000,
                },
                ShardPoint {
                    shards: 4,
                    secs: 1.0,
                    stats: WindowStats {
                        barriers: 100,
                        central_events: 250,
                        handoff_replays: 40,
                        batched_windows: 60,
                        max_batch: 9,
                    },
                    allocs: 1100,
                },
            ],
            shard_deterministic: true,
            checkpoint: ckpt(),
            fleet: fleet(),
            e2e_experiments: vec!["fig2".into()],
            experiment_secs: vec![2.0],
            e2e_effective_jobs: 4,
            serial_secs: 2.0,
            parallel_secs: 0.5,
        };
        assert!((r.shard_speedup() - 2.0).abs() < 1e-9);
        assert!(r.checkpoint.delta_ratio() > 5.0);
        let j = r.to_json();
        assert!(j.contains("\"schema\": 6"));
        assert!(j.contains("\"barriers_by_shards\": {\"4\": 100}"));
        assert!(j.contains("\"events_per_window_by_shards\": {\"4\": 2.500}"));
        assert!(j.contains("\"batched_windows_by_shards\": {\"4\": 60}"));
        assert!(j.contains("\"max_batch_by_shards\": {\"4\": 9}"));
        assert!(j.contains("\"handoff_replays_by_shards\": {\"4\": 40}"));
        assert!(j.contains("\"allocs_by_shards\": {\"4\": 1100}"));
        assert!(j.contains("\"delta_identical\": true"));
        assert!(j.contains("\"goodput_retained\": 0.851"));
        assert!(j.contains("\"fleet_mttr_secs\": 25.0"));
        assert!(j.contains("\"starvation_margin\": 1.000"));
        assert!(j.contains("\"violations\": 0"));
        assert!(j.contains("\"jobs_deterministic\": true"));
        assert!(j.contains("\"delta_bytes_per_point\": 24000"));
        assert!(j.contains("\"delta_ratio\": 6.34"));
        assert!(j.contains("\"chunks_reused\": 7388"));
        assert!(j.contains("\"secs_by_shards\": {\"1\": 2.000, \"4\": 1.000}"));
        assert!(j.contains("\"deterministic\": true"));
        assert!(j.contains("\"experiment_secs\": {\"fig2\": 2.000}"));
        assert!(j.contains("\"available_parallelism\": 8"));
        assert!(j.contains("\"alloc_counting_active\": true"));
        assert!(j.contains("\"indexed_allocs_per_event\": 0.125"));
        assert!(j.contains("\"traced_peak_bytes\": 2048"));
        assert!(j.contains("\"effective_jobs\": 4"));
        assert!(j.contains("\"speedup\": 3.00"));
        assert!(j.contains("\"speedup\": 4.00"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn single_effective_worker_reports_unit_e2e_speedup() {
        let r = BenchReport {
            mode: "smoke",
            jobs: 4,
            available_parallelism: 1,
            alloc_counting_active: false,
            micro_trajectories: 96,
            naive: leg(1000.0, 0.0, 0),
            indexed: leg(3000.0, 0.0, 0),
            traced: leg(2500.0, 0.0, 0),
            shard_curve: Vec::new(),
            shard_deterministic: true,
            checkpoint: ckpt(),
            fleet: fleet(),
            e2e_experiments: vec!["fig2".into(), "fig9".into()],
            experiment_secs: vec![1.0, 1.0],
            e2e_effective_jobs: 1,
            serial_secs: 2.0,
            parallel_secs: 2.0,
        };
        assert!((r.e2e_speedup() - 1.0).abs() < 1e-9);
        assert!(r.summary().contains("effective 1"));
        assert!(r.to_json().contains("\"effective_jobs\": 1"));
    }
}
