//! The mixed-workload tenant scenario generator.
//!
//! A fleet serves many concurrent post-training jobs, and the jobs are not
//! interchangeable: a math-RL tenant issues dense single-turn reasoning
//! requests, an agentic tenant interleaves short decodes with sandbox
//! tool calls whose latency is spiky (§2.2), and a long-context tenant
//! issues fewer but far heavier requests. The router's fairness machinery
//! only matters because these profiles differ — a long-context burst can
//! starve a math tenant under naive routing.
//!
//! Length distributions come from [`laminar_workload::LengthModel`] (the
//! paper's per-checkpoint response models) and tool-call latency from
//! [`laminar_workload::SandboxModel`], so a tenant's service demand is the
//! same heavy-tailed shape the single-cell simulation uses.

use laminar_sim::{Duration, SimRng};
use laminar_workload::{Checkpoint, LengthModel, SandboxModel};

/// The three tenant archetypes the fleet study mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantClass {
    /// Single-turn math reasoning (Qwen2.5-Math-7B-shaped lengths).
    MathRl,
    /// Multi-turn tool calling: short per-turn decodes plus sandbox calls
    /// with a heavy queueing tail.
    Agentic,
    /// Long-context reasoning: low request rate, very heavy per-request
    /// service demand (72B-shaped lengths, grown 2×).
    LongContext,
}

impl TenantClass {
    /// Stable display name (used in metric notes and fingerprints).
    pub fn name(self) -> &'static str {
        match self {
            TenantClass::MathRl => "math-rl",
            TenantClass::Agentic => "agentic",
            TenantClass::LongContext => "long-ctx",
        }
    }
}

/// One tenant's traffic contract: class, fairness weight, arrival process,
/// and rate-limit parameters.
#[derive(Debug, Clone)]
pub struct TenantProfile {
    /// Display name.
    pub name: String,
    /// Workload archetype.
    pub class: TenantClass,
    /// Fairness weight (relative completion-share entitlement).
    pub weight: f64,
    /// Mean request arrival rate, requests per second (Poisson process).
    pub arrival_rate: f64,
    /// Token-bucket refill rate, requests per second.
    pub bucket_rate: f64,
    /// Token-bucket burst capacity.
    pub bucket_burst: f64,
}

impl TenantProfile {
    /// The standard three-class mix sized so the default fleet runs at
    /// roughly two-thirds utilization — enough headroom that one lost cell
    /// of four degrades goodput without collapsing it.
    ///
    /// `classes` ≥ 3 cycles through the archetypes (a 5-tenant mix has two
    /// math tenants, two agentic, one long-context).
    pub fn standard_mix(classes: usize) -> Vec<TenantProfile> {
        let archetypes = [
            (TenantClass::MathRl, 1.0, 3.2),
            (TenantClass::Agentic, 1.0, 1.0),
            (TenantClass::LongContext, 1.5, 0.5),
        ];
        (0..classes.max(1))
            .map(|i| {
                let (class, weight, rate) = archetypes[i % archetypes.len()];
                // Bucket admits the offered rate with 25% headroom; the
                // burst absorbs a few seconds of backlog after recovery.
                TenantProfile {
                    name: format!("{}-{}", class.name(), i / archetypes.len()),
                    class,
                    weight,
                    arrival_rate: rate,
                    bucket_rate: rate * 1.25,
                    bucket_burst: (rate * 4.0).max(2.0),
                }
            })
            .collect()
    }

    /// Samples the next interarrival gap (exponential, mean `1/rate`).
    pub fn next_interarrival(&self, rng: &mut SimRng) -> Duration {
        let u = rng.f64().max(1e-12);
        Duration::from_secs_f64((-u.ln() / self.arrival_rate.max(1e-9)).min(3600.0))
    }

    /// Samples the service demand of one request, in seconds of cell time
    /// at nominal speed.
    pub fn sample_service(&self, rng: &mut SimRng) -> Duration {
        let secs = match self.class {
            TenantClass::MathRl => {
                let m = LengthModel::for_checkpoint(Checkpoint::Math7B);
                decode_secs(m.sample_prompt(rng), m.sample_response(rng))
            }
            TenantClass::Agentic => {
                let m = LengthModel::for_checkpoint(Checkpoint::Tool7B);
                let env = SandboxModel::paper_sandbox();
                let turns = 2 + rng.index(4); // 2..=5 turns
                let mut total = 0.0;
                for _ in 0..turns {
                    total += decode_secs(m.sample_prompt(rng), m.sample_response(rng));
                    total += env.sample_secs(rng);
                }
                total
            }
            TenantClass::LongContext => {
                let m = LengthModel::for_checkpoint(Checkpoint::Math72B).evolved(2.0);
                decode_secs(m.sample_prompt(rng), m.sample_response(rng))
            }
        };
        Duration::from_secs_f64(secs.clamp(0.05, 600.0))
    }
}

/// Cell service rates used to convert token counts into service seconds:
/// prefill is compute-bound and fast, decode is bandwidth-bound.
fn decode_secs(prompt_tokens: u64, response_tokens: u64) -> f64 {
    const PREFILL_TOKENS_PER_SEC: f64 = 24_000.0;
    const DECODE_TOKENS_PER_SEC: f64 = 1_600.0;
    prompt_tokens as f64 / PREFILL_TOKENS_PER_SEC + response_tokens as f64 / DECODE_TOKENS_PER_SEC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mix_cycles_all_three_classes() {
        let mix = TenantProfile::standard_mix(5);
        assert_eq!(mix.len(), 5);
        assert_eq!(mix[0].class, TenantClass::MathRl);
        assert_eq!(mix[1].class, TenantClass::Agentic);
        assert_eq!(mix[2].class, TenantClass::LongContext);
        assert_eq!(mix[3].class, TenantClass::MathRl);
        assert!(mix.iter().all(|t| t.arrival_rate > 0.0));
        assert!(mix.iter().all(|t| t.bucket_rate > t.arrival_rate));
    }

    #[test]
    fn service_profiles_are_distinct_and_deterministic() {
        let mix = TenantProfile::standard_mix(3);
        let mean = |t: &TenantProfile, seed: u64| {
            let mut rng = SimRng::derive(seed, "tenant-test", 0);
            (0..400)
                .map(|_| t.sample_service(&mut rng).as_secs_f64())
                .sum::<f64>()
                / 400.0
        };
        let math = mean(&mix[0], 1);
        let agentic = mean(&mix[1], 1);
        let long = mean(&mix[2], 1);
        assert!(
            math < agentic && math < long,
            "math {math:.2}s agentic {agentic:.2}s long {long:.2}s"
        );
        assert_eq!(
            mean(&mix[0], 7),
            mean(&mix[0], 7),
            "same stream, same demand"
        );
    }

    #[test]
    fn interarrival_matches_rate_roughly() {
        let t = &TenantProfile::standard_mix(3)[0];
        let mut rng = SimRng::derive(3, "tenant-arrival-test", 0);
        let mean = (0..2000)
            .map(|_| t.next_interarrival(&mut rng).as_secs_f64())
            .sum::<f64>()
            / 2000.0;
        let expect = 1.0 / t.arrival_rate;
        assert!(
            (mean - expect).abs() < expect * 0.2,
            "mean gap {mean:.3}s vs expected {expect:.3}s"
        );
    }
}
