/root/repo/target/release/deps/laminar_relay-7f76d471017cd1e1.d: crates/relay/src/lib.rs crates/relay/src/bytes.rs crates/relay/src/chunk.rs crates/relay/src/model.rs crates/relay/src/runtime.rs

/root/repo/target/release/deps/laminar_relay-7f76d471017cd1e1: crates/relay/src/lib.rs crates/relay/src/bytes.rs crates/relay/src/chunk.rs crates/relay/src/model.rs crates/relay/src/runtime.rs

crates/relay/src/lib.rs:
crates/relay/src/bytes.rs:
crates/relay/src/chunk.rs:
crates/relay/src/model.rs:
crates/relay/src/runtime.rs:
