//! The shared experiment configuration.

use laminar_cluster::{
    CollectiveModel, DecodeModel, GpuSpec, MachineSpec, ModelSpec, ReshardModel, TrainModel,
};
use laminar_rollout::EngineConfig;
use laminar_workload::{Dataset, WorkloadGenerator};

/// Everything a system needs to run one experiment configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Model being trained/served.
    pub model: ModelSpec,
    /// Machine hardware.
    pub machine: MachineSpec,
    /// GPUs allocated to the trainer (ignored by colocated verl).
    pub train_gpus: usize,
    /// GPUs allocated to rollouts (for verl: all GPUs, time-shared).
    pub rollout_gpus: usize,
    /// Tensor-parallel degree per rollout replica.
    pub rollout_tp: usize,
    /// Maximum concurrent trajectories per replica.
    pub max_concurrency: usize,
    /// Prompts per global batch (512).
    pub prompts_per_batch: usize,
    /// Responses per prompt (16) — global batch = prompts × group.
    pub group_size: usize,
    /// Mini-batch updates per RL iteration (16).
    pub minibatches: usize,
    /// Response lengths evolve as the model learns (§2.3): the median
    /// length is scaled by `1 + evolution_rate × batch index`. The default
    /// 0.002 is a mild drift; the evolution ablation raises it.
    pub evolution_rate: f64,
    /// Fraction of GPU memory the serving engine may use for weights +
    /// KVCache. Disaggregated systems get the full 0.9; colocated verl
    /// keeps training state resident and serves with ~0.45 (the HybridEngine
    /// memory pressure of §2.4).
    pub kv_memory_utilization: f64,
    /// Workload generator (identical across systems for a given seed).
    pub workload: WorkloadGenerator,
    /// Measured RL iterations (after warmup).
    pub iterations: usize,
    /// Warmup RL iterations excluded from the throughput metric.
    pub warmup: usize,
    /// Root seed.
    pub seed: u64,
}

impl SystemConfig {
    /// A paper-shaped configuration on H800 hardware. `train_gpus = 0` is
    /// allowed only for colocated verl.
    pub fn new(
        model: ModelSpec,
        train_gpus: usize,
        rollout_gpus: usize,
        rollout_tp: usize,
        workload: WorkloadGenerator,
    ) -> Self {
        assert!(rollout_gpus >= rollout_tp && rollout_gpus.is_multiple_of(rollout_tp));
        SystemConfig {
            model,
            machine: MachineSpec::h800_server(),
            train_gpus,
            rollout_gpus,
            rollout_tp,
            max_concurrency: 1024,
            prompts_per_batch: 512,
            group_size: 16,
            minibatches: 16,
            evolution_rate: 0.002,
            kv_memory_utilization: 0.9,
            workload,
            iterations: 4,
            warmup: 2,
            seed: 0,
        }
    }

    /// A heavily shrunk configuration for fast tests: small batch, short
    /// runs.
    pub fn small_test(workload: WorkloadGenerator) -> Self {
        let mut cfg = SystemConfig::new(ModelSpec::qwen_7b(), 8, 8, 1, workload);
        cfg.prompts_per_batch = 16;
        cfg.group_size = 4;
        cfg.minibatches = 4;
        cfg.iterations = 2;
        cfg.warmup = 1;
        cfg
    }

    /// Total GPUs of the configuration (`train_gpus == 0` means colocated:
    /// training time-shares the rollout GPUs).
    pub fn total_gpus(&self) -> usize {
        if self.train_gpus == 0 {
            self.rollout_gpus
        } else {
            self.train_gpus + self.rollout_gpus
        }
    }

    /// Rollout replica count.
    pub fn replicas(&self) -> usize {
        self.rollout_gpus / self.rollout_tp
    }

    /// Trajectories per global batch.
    pub fn global_batch(&self) -> usize {
        self.prompts_per_batch * self.group_size
    }

    /// GPU type in use.
    pub fn gpu(&self) -> GpuSpec {
        self.machine.gpu.clone()
    }

    /// Decode model for one replica.
    pub fn decode_model(&self) -> DecodeModel {
        let mut m = DecodeModel::new(self.model.clone(), self.gpu(), self.rollout_tp);
        m.memory_utilization = self.kv_memory_utilization;
        m
    }

    /// Training model. For colocated verl pass the full GPU count
    /// explicitly via `train_model_on`.
    pub fn train_model(&self) -> TrainModel {
        TrainModel::new(self.model.clone(), self.gpu(), self.train_gpus.max(1))
    }

    /// Training model over an explicit GPU count (colocated mode).
    pub fn train_model_on(&self, gpus: usize) -> TrainModel {
        TrainModel::new(self.model.clone(), self.gpu(), gpus.max(1))
    }

    /// NCCL / relay transfer models.
    pub fn collective(&self) -> CollectiveModel {
        CollectiveModel::new(self.machine.clone())
    }

    /// HybridEngine reshard model.
    pub fn reshard(&self) -> ReshardModel {
        ReshardModel::new(self.machine.clone())
    }

    /// Engine configuration per replica.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            max_concurrency: self.max_concurrency,
            ..EngineConfig::default()
        }
    }

    /// A fresh dataset for this configuration.
    pub fn dataset(&self) -> Dataset {
        Dataset::new(17_000, self.group_size)
    }

    /// Total iterations simulated (warmup + measured).
    pub fn total_iterations(&self) -> usize {
        self.warmup + self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_workload::Checkpoint;

    #[test]
    fn config_shape() {
        let cfg = SystemConfig::small_test(WorkloadGenerator::single_turn(1, Checkpoint::Math7B));
        assert_eq!(cfg.global_batch(), 64);
        assert_eq!(cfg.replicas(), 8);
        assert_eq!(cfg.total_iterations(), 3);
    }
}
