//! Per-trajectory execution state inside a replica.

use laminar_sim::{Duration, Time};
use laminar_workload::{Segment, TrajectorySpec};

/// Execution phase of an in-flight trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Prompt (or re-prefill after a move/interrupt) is being processed;
    /// decoding starts at `until`.
    Prefill {
        /// When the prefill finishes.
        until: Time,
    },
    /// Actively decoding in the replica's batch.
    Decoding,
    /// Waiting on an environment call; KVCache is held but no decode runs.
    Env {
        /// When the environment call returns.
        until: Time,
    },
}

/// Weight versions a trajectory generated under, oldest first, never empty.
///
/// Most trajectories finish under the version they started with, so the
/// representation keeps the first version inline and only allocates the
/// `extras` spill vector once a *different* version is actually pushed —
/// creating or version-resetting a trajectory costs zero heap allocations.
/// Consecutive duplicates are collapsed on push (and on [`from_vec`]), so
/// `extras` is non-empty exactly when the trajectory is mixed-version.
///
/// [`from_vec`]: PolicyVersions::from_vec
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyVersions {
    first: u64,
    extras: Vec<u64>,
}

impl PolicyVersions {
    /// The common case: a trajectory serving a single version. Allocates
    /// nothing (`Vec::new` is heap-free until first push).
    pub fn single(version: u64) -> Self {
        PolicyVersions {
            first: version,
            extras: Vec::new(),
        }
    }

    /// Rebuilds from an explicit oldest-first list (e.g. a partial-response
    /// record), collapsing consecutive duplicates to canonical form.
    ///
    /// # Panics
    /// Panics if `versions` is empty — the list is never empty by invariant.
    pub fn from_vec(versions: Vec<u64>) -> Self {
        let mut it = versions.into_iter();
        let first = it.next().expect("policy versions are never empty");
        let mut pv = PolicyVersions {
            first,
            extras: Vec::new(),
        };
        for v in it {
            pv.push(v);
        }
        pv
    }

    /// The version generation started under (behaviour version).
    pub fn first(&self) -> u64 {
        self.first
    }

    /// The version currently in effect.
    pub fn last(&self) -> u64 {
        *self.extras.last().unwrap_or(&self.first)
    }

    /// Number of distinct recorded version stretches.
    pub fn len(&self) -> usize {
        1 + self.extras.len()
    }

    /// Never true: the list always holds at least the starting version.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether more than one version contributed tokens.
    pub fn is_mixed(&self) -> bool {
        !self.extras.is_empty()
    }

    /// Records that generation continues under `version` (collapsed if equal
    /// to the last recorded one).
    pub fn push(&mut self, version: u64) {
        if self.last() != version {
            self.extras.push(version);
        }
    }

    /// Forgets history and restarts the list at `version` (used when a
    /// waiting, zero-progress trajectory is retagged to a new weight
    /// version). Keeps any spill capacity for reuse.
    pub fn reset(&mut self, version: u64) {
        self.first = version;
        self.extras.clear();
    }

    /// Oldest-first iteration over the recorded versions.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        std::iter::once(self.first).chain(self.extras.iter().copied())
    }

    /// The versions as an owned oldest-first vector (boundary conversions
    /// into `laminar_data` records).
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

impl PartialEq<Vec<u64>> for PolicyVersions {
    fn eq(&self, other: &Vec<u64>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<[u64]> for PolicyVersions {
    fn eq(&self, other: &[u64]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

/// State of one in-flight trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajState {
    /// The underlying assignment.
    pub spec: TrajectorySpec,
    /// Index of the segment currently executing.
    pub segment: usize,
    /// Tokens decoded within the current decode segment (fractional while a
    /// rate period is open).
    pub decoded_in_segment: f64,
    /// Total tokens decoded so far.
    pub total_decoded: f64,
    /// Weight versions used so far, oldest first (never empty).
    pub policy_versions: PolicyVersions,
    /// When generation first started (across moves).
    pub started_at: Time,
    /// Current phase.
    pub phase: Phase,
    /// Set when the trajectory was moved between replicas while in an
    /// environment call: its KVCache must be rebuilt before the next decode.
    pub needs_reprefill: bool,
    /// When the current decode segment entered [`Phase::Decoding`]; feeds the
    /// `DecodeStep` trace span emitted at segment completion.
    pub decode_started_at: Time,
    /// Engine-local lazy-progress baseline: the engine's global decode-step
    /// accumulator at the instant this trajectory last entered
    /// [`Phase::Decoding`] (or was last materialized). While decoding, the
    /// true decoded counts are `decoded_in_segment`/`total_decoded` plus
    /// `global_steps - steps_baseline`; the engine materializes them at phase
    /// transitions. Reset to 0 whenever the trajectory leaves the decoding
    /// phase so states stay comparable across engines.
    pub steps_baseline: f64,
    /// Engine-local segment-completion key: the value of the engine's global
    /// decode-step accumulator at which the current decode segment finishes.
    /// Stale heap entries are detected by comparing against this field.
    /// Reset to 0 whenever the trajectory leaves the decoding phase.
    pub finish_key: f64,
    /// Cumulative extra delay absorbed by this trajectory's env calls from
    /// `EnvStall` faults, counted against the engine's stall budget.
    pub env_stalled: Duration,
    /// Set when an env call exhausted the stall budget: the call is
    /// abandoned and the trajectory completes early at its next transition
    /// instead of wedging the batch.
    pub aborted: bool,
}

impl TrajState {
    /// Fresh state for a spec starting at `now` with weight `version`.
    pub fn new(spec: TrajectorySpec, version: u64, now: Time) -> Self {
        TrajState {
            spec,
            segment: 0,
            decoded_in_segment: 0.0,
            total_decoded: 0.0,
            policy_versions: PolicyVersions::single(version),
            started_at: now,
            phase: Phase::Prefill { until: now },
            needs_reprefill: false,
            decode_started_at: now,
            steps_baseline: 0.0,
            finish_key: 0.0,
            env_stalled: Duration::ZERO,
            aborted: false,
        }
    }

    /// Current context length in tokens (prompt plus everything decoded):
    /// the trajectory's KVCache footprint while resident.
    pub fn context_tokens(&self) -> f64 {
        self.spec.prompt_tokens as f64 + self.total_decoded
    }

    /// Token length of the current segment if it is a decode segment.
    pub fn current_decode_tokens(&self) -> Option<u64> {
        match self.spec.segments.get(self.segment) {
            Some(Segment::Decode { tokens }) => Some(*tokens),
            _ => None,
        }
    }

    /// Tokens left in the current decode segment (0 for non-decode phases).
    pub fn remaining_in_segment(&self) -> f64 {
        match self.current_decode_tokens() {
            Some(t) => (t as f64 - self.decoded_in_segment).max(0.0),
            None => 0.0,
        }
    }

    /// True once every segment has executed.
    pub fn is_complete(&self) -> bool {
        self.segment >= self.spec.segments.len()
    }

    /// Records that generation continues under `version` (if different from
    /// the last recorded one).
    pub fn push_version(&mut self, version: u64) {
        self.policy_versions.push(version);
    }

    /// Appends the state's canonical checkpoint encoding: a fixed-order
    /// word stream covering every field (spec included). One trajectory =
    /// one delta-checkpoint chunk, so the encoding must be identical no
    /// matter whether a full or an incremental encoder produced it — both
    /// call exactly this method.
    pub fn encode_words(&self, out: &mut Vec<u64>) {
        self.spec.encode_words(out);
        out.push(self.segment as u64);
        out.push(self.decoded_in_segment.to_bits());
        out.push(self.total_decoded.to_bits());
        out.push(self.policy_versions.len() as u64);
        out.extend(self.policy_versions.iter());
        out.push(self.started_at.as_nanos());
        match self.phase {
            Phase::Prefill { until } => {
                out.push(0);
                out.push(until.as_nanos());
            }
            Phase::Decoding => {
                out.push(1);
                out.push(0);
            }
            Phase::Env { until } => {
                out.push(2);
                out.push(until.as_nanos());
            }
        }
        out.push(self.needs_reprefill as u64);
        out.push(self.decode_started_at.as_nanos());
        out.push(self.steps_baseline.to_bits());
        out.push(self.finish_key.to_bits());
        out.push(self.env_stalled.as_nanos());
        out.push(self.aborted as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_workload::{Checkpoint, WorkloadGenerator};

    fn state() -> TrajState {
        let spec = WorkloadGenerator::single_turn(1, Checkpoint::Math7B).trajectory(0, 0, 0, 1.0);
        TrajState::new(spec, 3, Time::from_secs(1))
    }

    #[test]
    fn fresh_state_invariants() {
        let s = state();
        assert_eq!(s.policy_versions, vec![3]);
        assert_eq!(s.total_decoded, 0.0);
        assert!(!s.is_complete());
        assert_eq!(s.context_tokens(), s.spec.prompt_tokens as f64);
        assert_eq!(
            s.remaining_in_segment(),
            s.current_decode_tokens()
                .expect("single-turn starts with decode") as f64
        );
    }

    #[test]
    fn push_version_dedups() {
        let mut s = state();
        s.push_version(3);
        s.push_version(4);
        s.push_version(4);
        assert_eq!(s.policy_versions, vec![3, 4]);
    }

    #[test]
    fn policy_versions_inline_single_case() {
        let mut pv = PolicyVersions::single(5);
        assert_eq!(pv.first(), 5);
        assert_eq!(pv.last(), 5);
        assert_eq!(pv.len(), 1);
        assert!(!pv.is_mixed());
        assert_eq!(pv.to_vec(), vec![5]);
        pv.push(5);
        assert_eq!(pv.len(), 1, "consecutive duplicate collapses");
        pv.push(7);
        assert!(pv.is_mixed());
        assert_eq!(pv.last(), 7);
        assert_eq!(pv, vec![5, 7]);
        pv.reset(9);
        assert!(!pv.is_mixed());
        assert_eq!(pv, vec![9]);
    }

    #[test]
    fn policy_versions_from_vec_canonicalizes() {
        let pv = PolicyVersions::from_vec(vec![2, 2, 3, 3, 3, 4]);
        assert_eq!(pv.to_vec(), vec![2, 3, 4]);
        assert_eq!(pv, PolicyVersions::from_vec(vec![2, 3, 4]));
    }

    #[test]
    #[should_panic(expected = "never empty")]
    fn policy_versions_reject_empty() {
        let _ = PolicyVersions::from_vec(Vec::new());
    }

    #[test]
    fn completion_by_segment_index() {
        let mut s = state();
        s.segment = s.spec.segments.len();
        assert!(s.is_complete());
        assert_eq!(s.current_decode_tokens(), None);
        assert_eq!(s.remaining_in_segment(), 0.0);
    }
}
