//! Determinism regression: every system is a pure function of its
//! configuration. Two runs with the same seed must produce byte-identical
//! reports — the property the whole simulation methodology rests on
//! (identical virtual-time schedules, identical RNG draws, no dependence
//! on wall-clock, thread timing, or map iteration order).

use laminar::prelude::*;

/// Disaggregated placement (Laminar); `train_gpus = 0` below yields the
/// colocated placement the barrier baselines require.
fn cfg(seed: u64) -> SystemConfig {
    let workload = WorkloadGenerator::single_turn(seed, Checkpoint::Math7B);
    let mut c = SystemConfig::small_test(workload);
    c.train_gpus = 4;
    c.rollout_gpus = 4;
    c.seed = seed;
    c
}

fn colocated(seed: u64) -> SystemConfig {
    let mut c = cfg(seed);
    c.train_gpus = 0;
    c.rollout_gpus = 8;
    c
}

fn assert_deterministic(name: &str, sys: &dyn RlSystem, cfg: &SystemConfig) {
    let a = format!("{:?}", sys.run(cfg));
    let b = format!("{:?}", sys.run(cfg));
    assert_eq!(a, b, "{name}: two same-seed runs diverged");
}

#[test]
fn all_five_systems_are_deterministic() {
    let colo = colocated(11);
    let disagg = cfg(11);
    assert_deterministic("verl-sync", &VerlSync, &colo);
    assert_deterministic("one-step", &OneStepStaleness, &disagg);
    assert_deterministic("stream-gen", &StreamGeneration, &disagg);
    assert_deterministic("partial-rollout", &PartialRollout, &disagg);
    assert_deterministic("laminar", &LaminarSystem::default(), &disagg);
}

#[test]
fn traced_and_plain_runs_agree() {
    // Tracing is pure observation: enabling it must not perturb a single
    // event, and the recorded spans must themselves be deterministic.
    let c = cfg(13);
    let mut t1 = RecordingTrace::new();
    let mut t2 = RecordingTrace::new();
    let r1 = LaminarSystem::default().run_traced(&c, &mut t1);
    let r2 = LaminarSystem::default().run_traced(&c, &mut t2);
    let plain = LaminarSystem::default().run(&c);
    assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    assert_eq!(format!("{r1:?}"), format!("{plain:?}"));
    assert_eq!(
        t1.to_jsonl(),
        t2.to_jsonl(),
        "trace output diverged across runs"
    );
    assert!(!t1.spans().is_empty());
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against the trivial way the determinism test could pass: a
    // system ignoring its seed entirely.
    let a = LaminarSystem::default().run(&cfg(11));
    let b = LaminarSystem::default().run(&cfg(12));
    assert_ne!(
        format!("{a:?}"),
        format!("{b:?}"),
        "seed must influence the run"
    );
}
