/root/repo/target/debug/deps/micro-3b6975d0ae191f0b.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-3b6975d0ae191f0b.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
