/root/repo/target/debug/deps/laminar_rollout-fc4cf074b75048ad.d: crates/rollout/src/lib.rs crates/rollout/src/engine/mod.rs crates/rollout/src/engine/lifecycle.rs crates/rollout/src/engine/stepper.rs crates/rollout/src/engine/tests.rs crates/rollout/src/manager.rs crates/rollout/src/repack.rs crates/rollout/src/traj.rs Cargo.toml

/root/repo/target/debug/deps/liblaminar_rollout-fc4cf074b75048ad.rmeta: crates/rollout/src/lib.rs crates/rollout/src/engine/mod.rs crates/rollout/src/engine/lifecycle.rs crates/rollout/src/engine/stepper.rs crates/rollout/src/engine/tests.rs crates/rollout/src/manager.rs crates/rollout/src/repack.rs crates/rollout/src/traj.rs Cargo.toml

crates/rollout/src/lib.rs:
crates/rollout/src/engine/mod.rs:
crates/rollout/src/engine/lifecycle.rs:
crates/rollout/src/engine/stepper.rs:
crates/rollout/src/engine/tests.rs:
crates/rollout/src/manager.rs:
crates/rollout/src/repack.rs:
crates/rollout/src/traj.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
