//! Synchronous colocated verl (Figure 3(a)).
//!
//! All GPUs time-share: reshard to the serving layout, generate the full
//! global batch, reshard back, train. Strictly on-policy (staleness 0), but
//! the generation stage runs to the *slowest* trajectory with the cluster
//! otherwise idle — the long-tail bubble the paper measures at up to 83.1%
//! of iteration time.

use crate::common::{
    generate_batch, generate_batch_at, NullTrace, RecordingTrace, RlSystem, RunReport, SpanKind,
    SystemConfig, TraceSink, TraceSpan,
};
use laminar_cluster::TrainModel;
use laminar_rollout::{EngineConfig, ReplicaEngine};
use laminar_runtime::delta::{
    encode_report_plane, encode_span_plane, StateImage, StatePlane, WordEnc,
};
use laminar_runtime::recovery::{Recoverable, RunSnapshot};
use laminar_sim::{Duration, Time, TimeSeries};
use laminar_workload::Dataset;

/// The synchronous colocated baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerlSync;

/// One verl run as explicit steppable state: [`VerlRun::step`] executes a
/// single synchronous iteration, so the recovery plane can snapshot the
/// run at iteration boundaries by cloning this struct. Spans buffer
/// internally and only reach the caller's sink at [`VerlRun::finish`], so
/// a resumed clone re-emits a byte-identical trace.
#[derive(Clone)]
pub struct VerlRun {
    cfg: SystemConfig,
    replicas: usize,
    train: TrainModel,
    switch: f64,
    ds: Dataset,
    report: RunReport,
    gen_series: TimeSeries,
    train_series: TimeSeries,
    clock: f64,
    kv_sum: f64,
    gen_time_total: f64,
    iter_time_total: f64,
    iter: usize,
    enabled: bool,
    spans: RecordingTrace,
}

impl VerlRun {
    /// Assembles a run from the config (clamping KV memory for the
    /// colocated layout) without executing anything yet.
    pub fn new(cfg: &SystemConfig, record_trace: bool) -> Self {
        assert_eq!(cfg.train_gpus, 0, "verl is colocated: set train_gpus = 0");
        // Colocated serving shares GPU memory with resident training state.
        let mut cfg = cfg.clone();
        cfg.kv_memory_utilization = cfg.kv_memory_utilization.min(0.45);
        let replicas = cfg.replicas();
        let train = cfg.train_model_on(cfg.rollout_gpus);
        let switch = cfg.reshard().switch_secs(&cfg.model);
        let ds = cfg.dataset();
        let report = RunReport {
            system: "verl".into(),
            ..RunReport::default()
        };
        VerlRun {
            cfg,
            replicas,
            train,
            switch,
            ds,
            report,
            gen_series: TimeSeries::new(),
            train_series: TimeSeries::new(),
            clock: 0.0,
            kv_sum: 0.0,
            gen_time_total: 0.0,
            iter_time_total: 0.0,
            iter: 0,
            enabled: record_trace,
            spans: RecordingTrace::new(),
        }
    }

    /// True once every configured iteration has run.
    pub fn done(&self) -> bool {
        self.iter >= self.cfg.total_iterations()
    }

    /// Virtual time consumed so far (end of the last completed iteration).
    pub fn clock_secs(&self) -> f64 {
        self.clock
    }

    fn rec(&mut self, span: TraceSpan) {
        if self.enabled {
            self.spans.record(span);
        }
    }

    /// Executes one synchronous iteration: reshard → generate → reshard →
    /// train.
    pub fn step(&mut self) {
        let iter = self.iter;
        let cfg = self.cfg.clone();
        let evolution = 1.0 + cfg.evolution_rate * iter as f64;
        let specs = cfg
            .workload
            .batch(&self.ds.next_batch(cfg.prompts_per_batch), evolution);
        let iter_start = self.clock;
        let version = iter as u64;
        let switch = self.switch;
        // Switch to generation layout, generate, switch back. The reshard
        // into the serving layout is when the freshly trained weights reach
        // the engines, so it traces as a weight sync.
        self.rec(TraceSpan::new(
            SpanKind::WeightSync,
            Time::from_secs_f64(self.clock),
            Time::from_secs_f64(self.clock + switch),
            None,
            version,
        ));
        self.clock += switch;
        let start = Duration::from_secs_f64(self.clock);
        let gen = if self.enabled {
            generate_batch_at(&cfg, &specs, self.replicas, start, version, &mut self.spans)
        } else {
            generate_batch_at(&cfg, &specs, self.replicas, start, version, &mut NullTrace)
        };
        let gen_secs = gen.duration.as_secs_f64();
        self.gen_series.push(
            Time::from_secs_f64(self.clock),
            gen.total_tokens / gen_secs.max(1e-9),
        );
        self.clock += gen_secs;
        self.rec(TraceSpan::new(
            SpanKind::WeightSync,
            Time::from_secs_f64(self.clock),
            Time::from_secs_f64(self.clock + switch),
            None,
            version,
        ));
        self.clock += switch;
        // Train the full batch on-policy.
        let train_secs = self.train.iteration_secs(gen.total_tokens, cfg.minibatches);
        self.rec(
            TraceSpan::new(
                SpanKind::TrainStep,
                Time::from_secs_f64(self.clock),
                Time::from_secs_f64(self.clock + train_secs),
                None,
                version,
            )
            .with_tokens(gen.total_tokens as u64),
        );
        self.train_series.push(
            Time::from_secs_f64(self.clock),
            gen.total_tokens / train_secs.max(1e-9),
        );
        self.clock += train_secs;
        if iter >= cfg.warmup {
            self.report.iteration_secs.push(self.clock - iter_start);
            self.report.iteration_tokens.push(gen.total_tokens);
            for off in &gen.completion_offsets {
                self.report
                    .staleness_by_finish
                    .push((off.as_secs_f64() / gen_secs.max(1e-9), 0));
            }
            // Strictly on-policy: staleness 0, single version.
            self.report.consumed.extend(std::iter::repeat_n(
                crate::common::ConsumedTraj {
                    staleness: 0,
                    mixed_version: false,
                },
                specs.len(),
            ));
            self.report.latencies.extend(gen.latencies.iter().copied());
            self.kv_sum += gen.mean_kv_utilization;
            self.gen_time_total += gen_secs + 2.0 * switch;
            self.iter_time_total += self.clock - iter_start;
        }
        self.iter += 1;
    }

    /// Finalizes the report and forwards the buffered trace to `trace`.
    pub fn finish(mut self, trace: &mut dyn TraceSink) -> RunReport {
        self.report.mean_kv_utilization = self.kv_sum / self.cfg.iterations.max(1) as f64;
        self.report.generation_fraction = if self.iter_time_total > 0.0 {
            self.gen_time_total / self.iter_time_total
        } else {
            0.0
        };
        self.report.gen_series = self.gen_series;
        self.report.train_series = self.train_series;
        trace.record_all(self.spans.take());
        self.report.finalize();
        self.report
    }
}

impl RlSystem for VerlSync {
    fn name(&self) -> &'static str {
        "verl"
    }

    fn run_traced(&self, cfg: &SystemConfig, trace: &mut dyn TraceSink) -> RunReport {
        let mut run = VerlRun::new(cfg, trace.enabled());
        while !run.done() {
            run.step();
        }
        run.finish(trace)
    }
}

impl Recoverable for VerlSync {
    type Snapshot = VerlRun;

    fn run_checkpointed(
        &self,
        cfg: &SystemConfig,
        every: Duration,
        trace: &mut dyn TraceSink,
    ) -> (RunReport, Vec<RunSnapshot<VerlRun>>) {
        assert!(
            every > Duration::ZERO,
            "checkpoint cadence must be positive"
        );
        let mut run = VerlRun::new(cfg, trace.enabled());
        let mut snapshots = Vec::new();
        let mut deadline = every.as_secs_f64();
        while !run.done() {
            run.step();
            // Snapshot at the first iteration boundary past each cadence
            // point (verl's only safe pause points are between iterations).
            while !run.done() && run.clock_secs() >= deadline {
                snapshots.push(RunSnapshot {
                    at: Time::from_secs_f64(deadline),
                    index: snapshots.len(),
                    state: run.clone(),
                });
                deadline += every.as_secs_f64();
            }
        }
        (run.finish(trace), snapshots)
    }

    fn resume(&self, snapshot: VerlRun, trace: &mut dyn TraceSink) -> RunReport {
        let mut run = snapshot;
        while !run.done() {
            run.step();
        }
        run.finish(trace)
    }

    fn encode_state(snapshot: &VerlRun) -> StateImage {
        let mut img = StateImage::new();
        let mut e = WordEnc::new();
        e.z(snapshot.iter)
            .f(snapshot.clock)
            .f(snapshot.kv_sum)
            .f(snapshot.gen_time_total)
            .f(snapshot.iter_time_total)
            .b(snapshot.enabled);
        let (next_prompt, next_traj) = snapshot.ds.cursor();
        e.u(next_prompt).u(next_traj);
        for series in [&snapshot.gen_series, &snapshot.train_series] {
            e.z(series.len());
            for &(t, v) in series.points() {
                e.t(t).f(v);
            }
        }
        let mut scalars = StatePlane::new("scalars");
        scalars.extend_paged(e.words());
        img.push_plane(scalars);
        img.push_plane(encode_span_plane("spans", snapshot.spans.spans()));
        img.push_plane(encode_report_plane("report", &snapshot.report));
        img
    }
}

/// Exposes the generation/training split of a synchronous iteration for the
/// Figure 1(b) breakdown experiment.
pub fn sync_breakdown(cfg: &SystemConfig) -> (f64, f64, f64) {
    let replicas = cfg.replicas();
    let train = cfg.train_model_on(cfg.rollout_gpus.max(cfg.train_gpus));
    let switch = cfg.reshard().switch_secs(&cfg.model);
    let mut ds = cfg.dataset();
    let specs = cfg
        .workload
        .batch(&ds.next_batch(cfg.prompts_per_batch), 1.0);
    let gen = generate_batch(cfg, &specs, replicas);
    let gen_secs = gen.duration.as_secs_f64() + 2.0 * switch;
    let total_train = train.iteration_secs(gen.total_tokens, cfg.minibatches);
    let prep = total_train * train.experience_prep_frac;
    (gen_secs, total_train - prep, prep)
}

/// Verl's generation engines are also used standalone for the Figure 9
/// lifecycle experiment; re-export a helper building one recording replica.
pub fn recording_replica(cfg: &SystemConfig) -> ReplicaEngine {
    let mut ecfg: EngineConfig = cfg.engine_config();
    ecfg.record_kv_series = true;
    ReplicaEngine::new(0, cfg.decode_model(), ecfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_workload::{Checkpoint, WorkloadGenerator};

    fn cfg() -> SystemConfig {
        let mut c = SystemConfig::small_test(WorkloadGenerator::single_turn(3, Checkpoint::Math7B));
        c.train_gpus = 0;
        c
    }

    #[test]
    fn verl_runs_and_reports() {
        let r = VerlSync.run(&cfg());
        assert_eq!(r.iteration_secs.len(), 2);
        assert!(r.throughput > 0.0);
        assert_eq!(r.max_staleness(), 0, "verl is strictly on-policy");
        assert_eq!(r.mixed_version_fraction(), 0.0);
        assert!(
            r.generation_fraction > 0.3,
            "generation dominates: {}",
            r.generation_fraction
        );
    }

    #[test]
    fn breakdown_sums_sensibly() {
        let (gen, train, prep) = sync_breakdown(&cfg());
        assert!(gen > 0.0 && train > 0.0 && prep > 0.0);
        assert!(prep < train, "prep is a small fraction");
        assert!(gen > train, "generation stage dominates in reasoning tasks");
    }

    #[test]
    #[should_panic(expected = "colocated")]
    fn verl_rejects_disaggregated_config() {
        let mut c = cfg();
        c.train_gpus = 8;
        let _ = VerlSync.run(&c);
    }
}
