/root/repo/target/debug/deps/model_properties-f24669c1fb19f79a.d: crates/cluster/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-f24669c1fb19f79a: crates/cluster/tests/model_properties.rs

crates/cluster/tests/model_properties.rs:
