/root/repo/target/release/deps/convergence-fdb6e61a32922dc4.d: tests/convergence.rs

/root/repo/target/release/deps/convergence-fdb6e61a32922dc4: tests/convergence.rs

tests/convergence.rs:
