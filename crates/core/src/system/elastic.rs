//! Elastic scale-out: rollout machines joining mid-run (§3.3).

use super::{Ev, World};
use laminar_rollout::ReplicaEngine;
use laminar_runtime::CircuitBreaker;
use laminar_sim::{Scheduler, Time};

impl World {
    /// Fresh rollout machines come online: each new replica initializes
    /// from the relay tier at the newest broadcast version, registers with
    /// the rollout manager, and starts generating immediately — no global
    /// coordination with the existing replicas.
    pub(super) fn add_replicas(&mut self, count: usize, now: Time, sched: &mut Scheduler<Ev>) {
        for _ in 0..count {
            let r = self.engines.len();
            self.engines.push(ReplicaEngine::new(
                r,
                self.cfg.decode_model(),
                self.engine_cfg(),
            ));
            self.alive.push(true);
            self.pulling.push(false);
            self.armed.push(laminar_rollout::shard::WakeQueue::new());
            self.breakers
                .push(CircuitBreaker::new(self.opts.recovery.breaker));
            self.manager.register(r, now);
            // New machines initialize from the relay tier (§3.3).
            self.engines[r].set_weight_version(self.relay_version, now);
            self.audit.record_version(r, self.relay_version);
            self.start_batch(r, now, sched);
            self.wake(r, sched);
        }
        // Scale-out raises the alive fraction; it can end a degraded
        // episode just like machine recovery does.
        self.note_capacity(now, sched);
    }
}
