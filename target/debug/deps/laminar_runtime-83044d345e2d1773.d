/root/repo/target/debug/deps/laminar_runtime-83044d345e2d1773.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs

/root/repo/target/debug/deps/liblaminar_runtime-83044d345e2d1773.rmeta: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/config.rs:
crates/runtime/src/report.rs:
crates/runtime/src/trace.rs:
