//! Seeded chaos driver for the threaded relay tier (§4.3).
//!
//! Each round publishes a new weight version, kills a seeded random subset
//! of the alive relays (always leaving survivors), runs a [`RelayTier::repair`]
//! pass, sometimes adds a replacement node, and requires every survivor to
//! reconverge to the latest version. The kill/add decisions are drawn from a
//! [`SimRng`] stream derived from the seed, so a scenario is reproducible
//! even though the relay workers are real threads.

use crate::bytes::Bytes;
use crate::runtime::{RelayTier, RelayTierConfig};
use laminar_sim::SimRng;
use std::time::Duration as StdDuration;

/// Shape of a relay chaos scenario.
#[derive(Debug, Clone)]
pub struct RelayChaosConfig {
    /// Initial relay count.
    pub nodes: usize,
    /// Publish → kill → repair → reconverge rounds.
    pub rounds: usize,
    /// Weight blob size per publish.
    pub blob_bytes: usize,
    /// Per-round reconvergence deadline.
    pub converge_timeout: StdDuration,
}

impl Default for RelayChaosConfig {
    fn default() -> Self {
        RelayChaosConfig {
            nodes: 6,
            rounds: 4,
            blob_bytes: 64 * 1024,
            converge_timeout: StdDuration::from_secs(10),
        }
    }
}

/// What a relay chaos scenario did and whether the tier survived it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayChaosReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Relays killed across all rounds.
    pub killed: Vec<usize>,
    /// Replacement relays added across all rounds.
    pub added: Vec<usize>,
    /// Repair passes that re-broadcast the latest version.
    pub rebroadcasts: u64,
    /// Last version published.
    pub final_version: u64,
    /// True iff every round reconverged within its deadline.
    pub converged: bool,
}

/// Runs one seeded chaos scenario against a real threaded tier. The same
/// seed always kills the same relays and adds replacements in the same
/// rounds.
pub fn run_relay_chaos(seed: u64, cfg: &RelayChaosConfig) -> RelayChaosReport {
    let mut rng = SimRng::derive(seed, "relay-chaos", 0);
    let mut tier = RelayTier::new(RelayTierConfig::fast(cfg.nodes));
    let mut report = RelayChaosReport {
        rounds: cfg.rounds,
        killed: Vec::new(),
        added: Vec::new(),
        rebroadcasts: 0,
        final_version: 0,
        converged: true,
    };
    for round in 0..cfg.rounds {
        let version = round as u64 + 1;
        tier.publish(version, fill(cfg.blob_bytes, seed as u8 ^ round as u8));
        report.final_version = version;
        // Kill a random subset of the alive relays, always leaving at
        // least two so the chain survives and still forwards.
        let mut alive = tier.alive_nodes();
        let max_kills = alive.len().saturating_sub(2).min(2);
        if max_kills > 0 {
            let kills = rng.index(max_kills + 1);
            rng.shuffle(&mut alive);
            for &id in alive.iter().take(kills) {
                tier.kill(id);
                report.killed.push(id);
            }
        }
        let repair = tier.repair();
        if repair.rebroadcast {
            report.rebroadcasts += 1;
        }
        if rng.chance(0.3) {
            report.added.push(tier.add_node());
        }
        if !tier.wait_converged(version, cfg.converge_timeout) {
            report.converged = false;
        }
    }
    tier.shutdown();
    report
}

fn fill(len: usize, tag: u8) -> Bytes {
    Bytes::from((0..len).map(|i| (i as u8) ^ tag).collect::<Vec<u8>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_scenario_converges_every_round() {
        for seed in [3, 17] {
            let report = run_relay_chaos(seed, &RelayChaosConfig::default());
            assert!(report.converged, "seed {seed}: {report:?}");
            assert_eq!(report.final_version, 4);
        }
    }

    #[test]
    fn same_seed_reproduces_the_fault_sequence() {
        let cfg = RelayChaosConfig {
            rounds: 3,
            ..RelayChaosConfig::default()
        };
        let a = run_relay_chaos(11, &cfg);
        let b = run_relay_chaos(11, &cfg);
        assert_eq!(a.killed, b.killed, "kill sequence is seed-determined");
        assert_eq!(a.added, b.added, "add sequence is seed-determined");
        assert!(a.converged && b.converged);
    }
}
