//! The recovery plane: graceful degradation under sustained capacity loss
//! and deterministic checkpoint/restore (DESIGN.md §8).
//!
//! **Degradation.** Every fault path that changes fleet capacity calls
//! [`World::note_capacity`]. When the alive fraction drops below the
//! configured threshold, a [`Ev::DegradeCheck`] is armed one degraded
//! window later; if capacity is still low when it fires, the driver enters
//! degraded mode — the per-replica admission target shrinks and a
//! configured staleness cap is relaxed by a bounded allowance — and emits a
//! [`SpanKind::Degraded`] marker. Capacity returning (machine recovery or
//! elastic scale-out) exits the mode and emits a [`SpanKind::Recovered`]
//! span covering the whole episode, which is what the recovery benchmark
//! reads MTTR from.
//!
//! **Checkpoint/restore.** A [`LaminarSnapshot`] is a deep clone of the
//! whole `Simulation<World>` taken between events at a cadence boundary.
//! Cloning a `BinaryHeap` or `HashMap` copies its backing storage verbatim,
//! so the clone pops and iterates in exactly the original order; together
//! with the seeded RNG being part of the state, a resumed run replays the
//! remaining events byte-identically — same report, same trace — which
//! `laminar_runtime::check_resume_equivalence` asserts outright.

use super::{Ev, LaminarSystem, World};
use laminar_data::Sampler;
use laminar_runtime::recovery::{fnv1a, Recoverable, RunSnapshot};
use laminar_runtime::{RunReport, SpanKind, SystemConfig, TraceSink};
use laminar_sim::{Duration, Scheduler, Simulation, Time};

impl World {
    fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Re-evaluates fleet capacity after any event that changes it.
    /// Arms the degradation timer when capacity drops below the threshold;
    /// ends the degraded episode as soon as capacity returns.
    pub(super) fn note_capacity(&mut self, now: Time, sched: &mut Scheduler<Ev>) {
        let frac = self.alive_count() as f64 / self.alive.len().max(1) as f64;
        if frac < self.opts.recovery.degraded_alive_frac {
            if self.capacity_low_since.is_none() {
                self.capacity_low_since = Some(now);
                sched.after(self.opts.recovery.degraded_window, Ev::DegradeCheck);
            }
        } else {
            self.capacity_low_since = None;
            if self.degraded {
                self.exit_degraded(now);
            }
        }
    }

    /// The armed degradation timer fired: enter degraded mode iff capacity
    /// has stayed low for the whole window (transient dips are absorbed).
    pub(super) fn degrade_check(&mut self, now: Time) {
        if self.degraded {
            return;
        }
        let Some(since) = self.capacity_low_since else {
            return;
        };
        if now.since(since) >= self.opts.recovery.degraded_window {
            self.enter_degraded(now);
        }
    }

    /// The staleness cap currently in force: the configured cap, plus the
    /// relax allowance only while degraded.
    fn effective_staleness_cap(&self) -> Option<u64> {
        self.opts.staleness_cap.map(|cap| {
            if self.degraded {
                cap + self.opts.recovery.staleness_relax
            } else {
                cap
            }
        })
    }

    fn enter_degraded(&mut self, now: Time) {
        self.degraded = true;
        self.degraded_entered = now;
        self.audit.degraded_entries += 1;
        self.span(SpanKind::Degraded, now, now, None, self.relay_version, 0);
        if let Some(cap) = self.effective_staleness_cap() {
            self.buffer
                .set_sampler(Sampler::StalenessCapped { max_staleness: cap });
        }
    }

    fn exit_degraded(&mut self, now: Time) {
        self.degraded = false;
        self.span(
            SpanKind::Recovered,
            self.degraded_entered,
            now,
            None,
            self.relay_version,
            0,
        );
        if let Some(cap) = self.effective_staleness_cap() {
            self.buffer
                .set_sampler(Sampler::StalenessCapped { max_staleness: cap });
        }
    }
}

/// A deterministic checkpoint of a Laminar run: the complete simulation
/// state (engines with their event heaps and resident trajectories, the
/// experience and partial-response buffers, actor and relay versions, the
/// driver clock, and every pending simulation event), frozen between
/// events at a cadence boundary.
#[derive(Clone)]
pub struct LaminarSnapshot {
    sim: Simulation<World>,
}

impl LaminarSnapshot {
    /// Virtual time the snapshot was taken at (all events up to and
    /// including this instant have executed).
    pub fn at(&self) -> Time {
        self.sim.scheduler.now()
    }
}

impl Recoverable for LaminarSystem {
    type Snapshot = LaminarSnapshot;

    fn run_checkpointed(
        &self,
        cfg: &SystemConfig,
        every: Duration,
        trace: &mut dyn TraceSink,
    ) -> (RunReport, Vec<RunSnapshot<LaminarSnapshot>>) {
        assert!(
            every > Duration::ZERO,
            "checkpoint cadence must be positive"
        );
        // Checkpointing drives the serial wake loop regardless of the shard
        // setting: snapshots freeze the run between queue events, a boundary
        // the sharded driver's out-of-queue fence loop doesn't expose. The
        // two drivers produce byte-identical output, so resume equivalence
        // is unaffected.
        let serial = LaminarSystem {
            shards: 1,
            ..self.clone()
        };
        let mut sim = serial.build(cfg, trace.enabled());
        let mut snapshots = Vec::new();
        let mut deadline = Time::ZERO + every;
        loop {
            let finished = sim.run_while_until(|w| !w.done(), deadline, 2_000_000_000);
            if finished {
                break;
            }
            assert!(
                sim.scheduler.next_event_time().is_some(),
                "laminar run stalled before completing its iterations"
            );
            snapshots.push(RunSnapshot {
                at: deadline,
                index: snapshots.len(),
                state: LaminarSnapshot { sim: sim.clone() },
            });
            deadline += every;
        }
        let mut world = sim.world;
        world.drain_spans(trace);
        (world.finish_report(), snapshots)
    }

    fn resume(&self, snapshot: LaminarSnapshot, trace: &mut dyn TraceSink) -> RunReport {
        let mut sim = snapshot.sim;
        let finished = sim.run_while(|w| !w.done(), 2_000_000_000);
        assert!(finished, "resumed laminar run did not complete");
        let mut world = sim.world;
        world.drain_spans(trace);
        world.finish_report()
    }

    fn fingerprint(snapshot: &LaminarSnapshot) -> u64 {
        let sim = &snapshot.sim;
        let w = &sim.world;
        let mut words = vec![
            sim.scheduler.now().as_nanos(),
            sim.scheduler.scheduled(),
            sim.scheduler.delivered(),
            sim.scheduler.pending() as u64,
            w.version,
            w.relay_version,
            w.iterations_done as u64,
            w.batches_issued,
            w.trainer_busy as u64,
            w.trainer_failed as u64,
            w.trainer_epoch,
            w.buffer.len() as u64,
            w.pool.len() as u64,
            w.partials.ids().len() as u64,
            w.degraded as u64,
        ];
        words.extend(w.rng.state_words());
        for (r, e) in w.engines.iter().enumerate() {
            words.push(r as u64);
            words.push(w.alive[r] as u64);
            words.push(e.weight_version());
            words.push(e.n_reqs() as u64);
            words.push(e.kv_reserved_tokens().to_bits());
            words.push(e.tokens_decoded().to_bits());
            words.push(e.pending_heap_entries() as u64);
            words.push(e.env_aborts());
        }
        fnv1a(words)
    }
}
