//! GRPO with Clip-Higher, plus the Decoupled-PPO objective (§8.2, Table 3).
//!
//! GRPO (the paper's training algorithm) samples a *group* of responses per
//! prompt, scores them with the rule-based verifier, and uses the
//! group-normalized reward as the advantage — no critic. The loss is the
//! PPO clipped surrogate with DAPO's asymmetric clip range
//! (`ε_low = 0.2`, `ε_high = 0.28`). Decoupled PPO (AReaL) separates the
//! *behaviour* policy (which generated the data, possibly mixed-version)
//! from a *proximal* policy (a recent snapshot) and reweights by a truncated
//! behaviour importance ratio — the algorithmic patch partial-rollout
//! systems need.

use crate::env::{Problem, ReasonEnv};
use crate::nn::{clip_grad_norm, Adam};
use crate::policy::{Policy, TabularPolicy};
use laminar_sim::SimRng;

/// One policy decision inside a trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajStep {
    /// State index.
    pub state: usize,
    /// Action taken.
    pub action: usize,
    /// Log-probability under the policy that generated this step.
    pub behavior_logp: f64,
    /// Version of the policy that generated this step.
    pub version: u64,
}

/// A completed RL trajectory with its verifier reward.
#[derive(Debug, Clone, PartialEq)]
pub struct RlTrajectory {
    /// Prompt identity (trajectories of the same prompt form a GRPO group).
    pub prompt_id: u64,
    /// The problem solved.
    pub problem: Problem,
    /// Decisions, in order.
    pub steps: Vec<TrajStep>,
    /// Verifier reward (0/1 for ReasonTree).
    pub reward: f64,
}

impl RlTrajectory {
    /// True when more than one policy version generated this trajectory.
    pub fn is_mixed_version(&self) -> bool {
        self.steps.windows(2).any(|w| w[0].version != w[1].version)
    }

    /// The version that started the trajectory.
    pub fn behavior_version(&self) -> u64 {
        self.steps.first().map(|s| s.version).unwrap_or(0)
    }
}

/// Generates one episode with a single consistent policy version.
pub fn generate_episode(
    env: &ReasonEnv,
    policy: &TabularPolicy,
    version: u64,
    prompt_id: u64,
    problem: Problem,
    rng: &mut SimRng,
) -> RlTrajectory {
    generate_mixed_episode(env, &[(policy, version)], prompt_id, problem, rng)
}

/// Generates one episode whose steps are split (as evenly as possible, in
/// order) across several policy versions — the partial-rollout
/// contamination path (§2.3, Appendix C).
pub fn generate_mixed_episode(
    env: &ReasonEnv,
    segments: &[(&TabularPolicy, u64)],
    prompt_id: u64,
    problem: Problem,
    rng: &mut SimRng,
) -> RlTrajectory {
    assert!(!segments.is_empty(), "need at least one policy");
    let mut steps = Vec::with_capacity(problem.depth);
    let mut actions = Vec::with_capacity(problem.depth);
    for level in 0..problem.depth {
        let seg = level * segments.len() / problem.depth;
        let (policy, version) = segments[seg];
        let state = env.state(problem.ptype, level);
        let action = policy.sample_action(state, rng);
        steps.push(TrajStep {
            state,
            action,
            behavior_logp: policy.log_prob(state, action),
            version,
        });
        actions.push(action);
    }
    let reward = env.reward(problem, &actions);
    RlTrajectory {
        prompt_id,
        problem,
        steps,
        reward,
    }
}

/// GRPO group advantages: `(r − mean) / (std + ε)` within the group.
/// A group with zero reward variance gets all-zero advantages (no signal).
pub fn grpo_advantages(rewards: &[f64]) -> Vec<f64> {
    if rewards.is_empty() {
        return Vec::new();
    }
    let n = rewards.len() as f64;
    let mean = rewards.iter().sum::<f64>() / n;
    let var = rewards.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
    let std = var.sqrt();
    if std < 1e-9 {
        return vec![0.0; rewards.len()];
    }
    rewards.iter().map(|r| (r - mean) / (std + 1e-6)).collect()
}

/// The gradient coefficient of the clipped surrogate w.r.t. `log π_cur`.
///
/// Surrogate `L = −min(ρ·A, clip(ρ, 1−ε_low, 1+ε_high)·A)` with
/// `ρ = exp(logπ_cur − ref_logp)`; `∂L/∂logπ_cur = −ρ·A` when the unclipped
/// branch is active, else 0.
pub fn surrogate_coeff(ratio: f64, adv: f64, clip_low: f64, clip_high: f64) -> f64 {
    let active = if adv >= 0.0 {
        ratio < 1.0 + clip_high
    } else {
        ratio > 1.0 - clip_low
    };
    if active {
        -ratio * adv
    } else {
        0.0
    }
}

/// Trainer configuration (Table 3's Laminar column by default).
#[derive(Debug, Clone)]
pub struct GrpoConfig {
    /// Learning rate.
    pub lr: f64,
    /// Lower clip `ε_low`.
    pub clip_low: f64,
    /// Upper clip `ε_high` (Clip-Higher: 0.28).
    pub clip_high: f64,
    /// Global gradient-norm cap.
    pub max_grad_norm: f64,
    /// Decoupled PPO: reference the proximal policy instead of the
    /// behaviour policy, reweighting by a truncated behaviour ratio.
    pub decoupled: bool,
    /// Truncation `c` of the behaviour importance weight in decoupled mode.
    pub is_truncation: f64,
}

impl Default for GrpoConfig {
    fn default() -> Self {
        GrpoConfig {
            lr: 0.02,
            clip_low: 0.2,
            clip_high: 0.28,
            max_grad_norm: 5.0,
            decoupled: false,
            is_truncation: 2.0,
        }
    }
}

/// Per-update statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Mean reward across the batch.
    pub mean_reward: f64,
    /// Fraction of steps whose surrogate was clipped to zero gradient.
    pub clip_fraction: f64,
    /// Mean importance ratio across steps.
    pub mean_ratio: f64,
    /// Trajectories in the batch.
    pub trajectories: usize,
}

/// The GRPO trainer owning the current policy.
#[derive(Debug, Clone)]
pub struct GrpoTrainer {
    /// The live policy (version [`Self::version`]).
    pub policy: TabularPolicy,
    cfg: GrpoConfig,
    opt: Adam,
    version: u64,
}

impl GrpoTrainer {
    /// Fresh trainer at version 0.
    pub fn new(env: &ReasonEnv, cfg: GrpoConfig) -> Self {
        let policy = TabularPolicy::new(env.num_states(), env.actions);
        let opt = Adam::new(cfg.lr);
        GrpoTrainer {
            policy,
            cfg,
            opt,
            version: 0,
        }
    }

    /// Current policy version (increments per update).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Applies one GRPO update over prompt groups. `proximal` supplies the
    /// reference policy for decoupled mode (ignored otherwise; the
    /// behaviour log-probs stored in the trajectories are used as the
    /// reference in standard mode).
    pub fn update(
        &mut self,
        groups: &[Vec<RlTrajectory>],
        proximal: Option<&TabularPolicy>,
    ) -> UpdateStats {
        let mut stats = UpdateStats::default();
        let mut total_steps = 0usize;
        let mut clipped = 0usize;
        let mut ratio_sum = 0.0;
        self.policy.zero_grad();
        let mut reward_sum = 0.0;
        // First pass: count steps for loss normalization.
        for g in groups {
            for t in g {
                total_steps += t.steps.len();
            }
        }
        if total_steps == 0 {
            return stats;
        }
        let norm = 1.0 / total_steps as f64;
        for group in groups {
            let rewards: Vec<f64> = group.iter().map(|t| t.reward).collect();
            let advs = grpo_advantages(&rewards);
            for (traj, &adv) in group.iter().zip(&advs) {
                reward_sum += traj.reward;
                stats.trajectories += 1;
                for step in &traj.steps {
                    let cur_logp = self.policy.log_prob(step.state, step.action);
                    let (ref_logp, is_weight) = if self.cfg.decoupled {
                        let prox = proximal.expect("decoupled mode needs a proximal policy");
                        let prox_logp = prox.log_prob(step.state, step.action);
                        let w = (prox_logp - step.behavior_logp)
                            .exp()
                            .min(self.cfg.is_truncation);
                        (prox_logp, w)
                    } else {
                        (step.behavior_logp, 1.0)
                    };
                    let ratio = (cur_logp - ref_logp).exp();
                    ratio_sum += ratio;
                    let coeff = surrogate_coeff(ratio, adv, self.cfg.clip_low, self.cfg.clip_high);
                    if coeff == 0.0 && adv != 0.0 {
                        clipped += 1;
                    }
                    if coeff != 0.0 {
                        self.policy.accumulate_logp_grad(
                            step.state,
                            step.action,
                            coeff * is_weight * norm,
                        );
                    }
                }
            }
        }
        clip_grad_norm(&mut self.policy, self.cfg.max_grad_norm);
        self.opt.step(&mut self.policy);
        self.version += 1;
        stats.mean_reward = reward_sum / stats.trajectories.max(1) as f64;
        stats.clip_fraction = clipped as f64 / total_steps as f64;
        stats.mean_ratio = ratio_sum / total_steps as f64;
        stats
    }
}

/// Mean reward of a policy over `n` freshly sampled problems.
pub fn evaluate(env: &ReasonEnv, policy: &TabularPolicy, n: usize, rng: &mut SimRng) -> f64 {
    let mut total = 0.0;
    for i in 0..n {
        let problem = env.sample_problem(rng);
        let traj = generate_episode(env, policy, 0, i as u64, problem, rng);
        total += traj.reward;
    }
    total / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantages_are_group_normalized() {
        let a = grpo_advantages(&[1.0, 0.0, 1.0, 0.0]);
        assert!((a.iter().sum::<f64>()).abs() < 1e-9);
        assert!(a[0] > 0.0 && a[1] < 0.0);
        assert_eq!(grpo_advantages(&[1.0, 1.0, 1.0]), vec![0.0; 3]);
        assert!(grpo_advantages(&[]).is_empty());
    }

    #[test]
    fn surrogate_clips_per_dapo() {
        // Positive advantage: clipped above 1 + 0.28.
        assert_eq!(surrogate_coeff(1.5, 1.0, 0.2, 0.28), 0.0);
        assert!(surrogate_coeff(1.2, 1.0, 0.2, 0.28) < 0.0);
        // Negative advantage: clipped below 1 - 0.2.
        assert_eq!(surrogate_coeff(0.5, -1.0, 0.2, 0.28), 0.0);
        assert!(surrogate_coeff(0.9, -1.0, 0.2, 0.28) > 0.0);
        // Clip-Higher asymmetry: a ratio of 1.25 passes upward but 0.75
        // fails downward.
        assert_ne!(surrogate_coeff(1.25, 1.0, 0.2, 0.28), 0.0);
        assert_eq!(surrogate_coeff(0.75, -1.0, 0.2, 0.28), 0.0);
    }

    fn run_training(
        env: &ReasonEnv,
        iters: usize,
        staleness: u64,
        seed: u64,
    ) -> (GrpoTrainer, f64) {
        // Train with behaviour data generated `staleness` versions behind,
        // via a snapshot ring.
        let cfg = GrpoConfig::default();
        let mut trainer = GrpoTrainer::new(env, cfg);
        let mut snapshots: Vec<TabularPolicy> = vec![trainer.policy.clone()];
        // Versions pruned off the ring's front: snapshot `i` holds policy
        // version `pruned + i`, not `i`, once retention kicks in.
        let mut pruned: u64 = 0;
        let mut rng = SimRng::new(seed);
        let group_size = 8;
        let prompts = 16;
        let mut last_eval = 0.0;
        for it in 0..iters {
            let behind = snapshots.len().saturating_sub(1 + staleness as usize);
            let behavior = snapshots[behind].clone();
            let bver = pruned + behind as u64;
            let mut groups = Vec::with_capacity(prompts);
            for p in 0..prompts {
                let prompt_id = (it * prompts + p) as u64;
                let problem = env.problem_for_prompt(seed, prompt_id);
                let group: Vec<RlTrajectory> = (0..group_size)
                    .map(|_| generate_episode(env, &behavior, bver, prompt_id, problem, &mut rng))
                    .collect();
                groups.push(group);
            }
            trainer.update(&groups, None);
            snapshots.push(trainer.policy.clone());
            if snapshots.len() > 64 {
                snapshots.remove(0);
                pruned += 1;
            }
            if it + 1 == iters {
                last_eval = evaluate(env, &trainer.policy, 600, &mut rng);
            }
        }
        (trainer, last_eval)
    }

    #[test]
    fn on_policy_grpo_learns_reason_tree() {
        let env = ReasonEnv::new(6, 3, 6, 11);
        let (_t, reward) = run_training(&env, 250, 0, 42);
        assert!(reward > 0.6, "on-policy GRPO must learn: reward {reward}");
    }

    #[test]
    fn heavy_staleness_learns_slower_than_on_policy() {
        let env = ReasonEnv::new(6, 3, 6, 11);
        let (_a, fresh) = run_training(&env, 120, 0, 7);
        let (_b, stale) = run_training(&env, 120, 40, 7);
        assert!(
            fresh > stale + 0.05,
            "staleness must slow convergence: fresh={fresh} stale={stale}"
        );
    }

    #[test]
    fn mixed_version_episode_is_detected() {
        let env = ReasonEnv::standard(1);
        let a = TabularPolicy::new(env.num_states(), env.actions);
        let mut b = TabularPolicy::new(env.num_states(), env.actions);
        // Make b distinguishable (not required, but realistic).
        b.accumulate_logp_grad(0, 0, -1.0);
        let mut rng = SimRng::new(2);
        let problem = Problem { ptype: 1, depth: 6 };
        let t = generate_mixed_episode(&env, &[(&a, 3), (&b, 4)], 0, problem, &mut rng);
        assert!(t.is_mixed_version());
        assert_eq!(t.behavior_version(), 3);
        assert_eq!(t.steps.len(), 6);
        // First half version 3, second half version 4.
        assert!(t.steps[..3].iter().all(|s| s.version == 3));
        assert!(t.steps[3..].iter().all(|s| s.version == 4));
    }

    #[test]
    fn decoupled_update_requires_proximal() {
        let env = ReasonEnv::new(4, 3, 4, 3);
        let cfg = GrpoConfig {
            decoupled: true,
            ..GrpoConfig::default()
        };
        let mut trainer = GrpoTrainer::new(&env, cfg);
        let behavior = trainer.policy.clone();
        let proximal = trainer.policy.clone();
        let mut rng = SimRng::new(4);
        let problem = env.problem_for_prompt(3, 0);
        let group: Vec<RlTrajectory> = (0..8)
            .map(|_| generate_episode(&env, &behavior, 0, 0, problem, &mut rng))
            .collect();
        let stats = trainer.update(&[group], Some(&proximal));
        assert_eq!(stats.trajectories, 8);
        assert_eq!(trainer.version(), 1);
    }

    #[test]
    fn empty_update_is_noop() {
        let env = ReasonEnv::new(4, 3, 4, 3);
        let mut trainer = GrpoTrainer::new(&env, GrpoConfig::default());
        let stats = trainer.update(&[], None);
        assert_eq!(stats.trajectories, 0);
        assert_eq!(trainer.version(), 0);
    }
}
