//! Property-based tests of the performance models.

use laminar_cluster::{ChainBroadcast, DecodeModel, GpuSpec, LinkSpec, ModelSpec, TrainModel};
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        Just(ModelSpec::qwen_7b()),
        Just(ModelSpec::qwen_32b()),
        Just(ModelSpec::qwen_72b()),
        Just(ModelSpec::tiny_test_model()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Decode step latency is monotone in batch size and context total.
    #[test]
    fn decode_latency_monotone(model in any_model(), tp in 1usize..8, b in 1usize..512, ctx in 0f64..5e6) {
        let m = DecodeModel::new(model, GpuSpec::h800(), tp);
        let t = m.step_secs(b, ctx);
        prop_assert!(t > 0.0 && t.is_finite());
        prop_assert!(m.step_secs(b + 1, ctx) >= t - 1e-12);
        prop_assert!(m.step_secs(b, ctx + 1e5) >= t - 1e-12);
    }

    /// More tensor parallelism never slows a fixed operating point down.
    #[test]
    fn tp_never_hurts_latency(b in 1usize..256, ctx in 0f64..2e6) {
        let m1 = DecodeModel::new(ModelSpec::qwen_7b(), GpuSpec::h800(), 1);
        let m2 = DecodeModel::new(ModelSpec::qwen_7b(), GpuSpec::h800(), 2);
        // Overheads grow with TP but the memory/compute split shrinks; at
        // any realistic point TP2 is at least no worse than 1.25x TP1.
        prop_assert!(m2.step_secs(b, ctx) <= m1.step_secs(b, ctx) * 1.25);
    }

    /// KVCache capacity grows with TP and shrinks with model size.
    #[test]
    fn kvcache_capacity_scaling(tp in 1usize..8) {
        let small = DecodeModel::new(ModelSpec::qwen_7b(), GpuSpec::h800(), tp);
        let big = DecodeModel::new(ModelSpec::qwen_32b(), GpuSpec::h800(), tp.max(4));
        prop_assert!(small.kvcache_capacity_tokens() > 0);
        let larger_tp = DecodeModel::new(ModelSpec::qwen_7b(), GpuSpec::h800(), tp + 1);
        prop_assert!(larger_tp.kvcache_capacity_tokens() > small.kvcache_capacity_tokens());
        let _ = big;
    }

    /// Training time is inversely proportional to GPU count.
    #[test]
    fn training_scales_inverse_with_gpus(gpus in 1usize..512, tokens in 1e5f64..1e9) {
        let a = TrainModel::new(ModelSpec::qwen_7b(), GpuSpec::h800(), gpus);
        let b = TrainModel::new(ModelSpec::qwen_7b(), GpuSpec::h800(), gpus * 2);
        let ta = a.minibatch_secs(tokens);
        let tb = b.minibatch_secs(tokens);
        prop_assert!((ta / tb - 2.0).abs() < 1e-6);
    }

    /// Chain broadcast time is monotone in message size and weakly monotone
    /// in node count.
    #[test]
    fn chain_broadcast_monotone(p in 2usize..256, gb in 0.1f64..200.0) {
        let chain = ChainBroadcast::new(LinkSpec::new("rdma", 90e9, 5e-6));
        let t = chain.optimal_broadcast_secs(p, gb * 1e9);
        prop_assert!(t > 0.0);
        prop_assert!(chain.optimal_broadcast_secs(p, gb * 2e9) > t);
        prop_assert!(chain.optimal_broadcast_secs(p + 1, gb * 1e9) >= t - 1e-9);
    }

    /// Roofline batch bound is stable across model sizes (it is a device
    /// ops:byte property).
    #[test]
    fn roofline_bound_is_device_property(model in any_model()) {
        let m = DecodeModel::new(model, GpuSpec::h800(), 1);
        let b = m.roofline_batch_limit();
        prop_assert!((100..300).contains(&b), "B = {b}");
    }
}
