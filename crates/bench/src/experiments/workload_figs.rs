//! Figure 2 (trajectory length & sandbox latency skew) and Figure 17
//! (response-length distributions per checkpoint).

use crate::experiments::Opts;
use crate::table::{bar, f1, f2, TextTable};
use laminar_sim::{Histogram, SimRng};
use laminar_workload::{Checkpoint, LengthModel, SandboxModel};
use std::fmt::Write as _;

fn length_hist(ckpt: Checkpoint, n: usize, seed: u64) -> Histogram {
    let model = LengthModel::for_checkpoint(ckpt);
    let mut rng = SimRng::derive(seed, "figlen", ckpt as u64);
    let mut h = Histogram::new();
    for _ in 0..n {
        h.add(model.sample_response(&mut rng) as f64);
    }
    h
}

/// Figure 2: length and sandbox-latency distributions.
pub fn fig2(opts: &Opts) -> String {
    let n = if opts.quick { 20_000 } else { 200_000 };
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2 — workload skew ({n} samples each)\n");

    let mut h = length_hist(Checkpoint::Math7B, n, opts.seed);
    let mut t = TextTable::new(vec!["trajectory length (tokens)", "value"]);
    t.row(vec!["p50".to_string(), f1(h.percentile(50.0))]);
    t.row(vec!["p90".to_string(), f1(h.percentile(90.0))]);
    t.row(vec!["p99".to_string(), f1(h.percentile(99.0))]);
    t.row(vec!["max".to_string(), f1(h.max())]);
    let skew = h.percentile(99.0) / h.percentile(50.0);
    t.row(vec!["p99 / p50".to_string(), f2(skew)]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\npaper: 99th-percentile output length up to ~10x the median; measured {skew:.1}x\n"
    );

    let sandbox = SandboxModel::paper_sandbox();
    let mut rng = SimRng::derive(opts.seed, "figenv", 0);
    let mut e = Histogram::new();
    for _ in 0..n {
        e.add(sandbox.sample_secs(&mut rng));
    }
    let mut t = TextTable::new(vec!["sandbox latency (s)", "value"]);
    t.row(vec!["p50".to_string(), f2(e.percentile(50.0))]);
    t.row(vec!["p90".to_string(), f2(e.percentile(90.0))]);
    t.row(vec!["p99".to_string(), f2(e.percentile(99.0))]);
    t.row(vec!["max".to_string(), f2(e.max())]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\npaper: environment latency varies by orders of magnitude; measured p99/p50 = {:.1}x",
        e.percentile(99.0) / e.percentile(50.0)
    );
    out
}

/// Figure 17: response-length distributions of each checkpoint.
pub fn fig17(opts: &Opts) -> String {
    let n = if opts.quick { 20_000 } else { 200_000 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 17 — response-length distributions per checkpoint\n"
    );
    let ckpts = [
        ("Qwen2.5-Math-7B", Checkpoint::Math7B),
        ("Qwen2.5-32B", Checkpoint::Math32B),
        ("Qwen2.5-Math-72B", Checkpoint::Math72B),
        ("ReTool-7B (per turn)", Checkpoint::Tool7B),
    ];
    let mut t = TextTable::new(vec!["checkpoint", "p50", "p90", "p99", "cap-hit %"]);
    for (name, c) in ckpts {
        let mut h = length_hist(c, n, opts.seed);
        let cap_hits =
            h.samples().iter().filter(|&&x| x >= 16_384.0).count() as f64 / n as f64 * 100.0;
        t.row(vec![
            name.to_string(),
            f1(h.percentile(50.0)),
            f1(h.percentile(90.0)),
            f1(h.percentile(99.0)),
            f2(cap_hits),
        ]);
    }
    out.push_str(&t.render());
    // Histogram of the 7B math checkpoint (the shape in the figure).
    let h = length_hist(Checkpoint::Math7B, n, opts.seed);
    let bins = h.bins(0.0, 16_384.0, 16);
    let max = *bins.iter().max().unwrap_or(&1) as f64;
    let _ = writeln!(out, "\n7B math length histogram (1K-token bins):");
    for (i, &b) in bins.iter().enumerate() {
        let _ = writeln!(out, "{:>6}K {}", i, bar(b as f64, max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reports_heavy_skew() {
        let s = fig2(&Opts::default());
        assert!(s.contains("p99 / p50"));
        assert!(s.contains("sandbox latency"));
    }

    #[test]
    fn fig17_covers_all_checkpoints() {
        let s = fig17(&Opts::default());
        assert!(s.contains("Qwen2.5-Math-72B"));
        assert!(s.contains("ReTool-7B"));
        assert!(s.contains('#'), "histogram rendered");
    }
}
