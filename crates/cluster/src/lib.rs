//! Hardware substrate for the Laminar reproduction.
//!
//! The paper's testbed — 128 machines × 8 NVIDIA H800-80GB, 400 GB/s NVLink
//! intra-machine, 8×400 Gbps RDMA inter-machine — is modelled from first
//! principles: peak FLOPs, HBM bandwidth, link bandwidths/latencies, and
//! model architecture parameters (Qwen2.5-like 7B/32B/72B). On top of these
//! sit the performance models every experiment relies on:
//!
//! * [`roofline`] — memory-bound decode step latency (Figure 4), the roofline
//!   batch bound `B` used by the repack algorithm, KVCache capacity, and
//!   compute-bound prefill latency;
//! * [`training`] — actor mini-batch/iteration step time under FSDP/TP/PP;
//! * [`collective`] — the NCCL-style global weight synchronization used by
//!   the baselines, and the HybridEngine reshard cost of colocated verl;
//! * [`chain`] — the chain-pipelined relay broadcast model of Appendix D,
//!   including the optimal chunk count `k*`.
//!
//! Absolute latencies are approximations of the paper's hardware; what the
//! experiments depend on is the latency *structure* (what is memory-bound,
//! what scales with batch, what is constant in cluster size), which these
//! models reproduce exactly.

pub mod chain;
pub mod collective;
pub mod gpu;
pub mod links;
pub mod model;
pub mod parallel;
pub mod roofline;
pub mod training;

pub use chain::ChainBroadcast;
pub use collective::{CollectiveModel, ReshardModel};
pub use gpu::{ClusterSpec, GpuSpec, MachineSpec};
pub use links::LinkSpec;
pub use model::ModelSpec;
pub use parallel::ParallelismPlan;
pub use roofline::DecodeModel;
pub use training::TrainModel;
