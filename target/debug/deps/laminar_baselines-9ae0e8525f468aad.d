/root/repo/target/debug/deps/laminar_baselines-9ae0e8525f468aad.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/partial.rs crates/baselines/src/pipeline.rs crates/baselines/src/verl.rs

/root/repo/target/debug/deps/liblaminar_baselines-9ae0e8525f468aad.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/partial.rs crates/baselines/src/pipeline.rs crates/baselines/src/verl.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/partial.rs:
crates/baselines/src/pipeline.rs:
crates/baselines/src/verl.rs:
