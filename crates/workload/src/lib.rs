//! Workload generation for RL post-training experiments.
//!
//! The defining property of modern RL post-training workloads (§2.2) is
//! extreme long-tail skew: the 99th-percentile trajectory length can exceed
//! the median by an order of magnitude, and multi-turn agentic tasks add
//! highly variable environment (code-sandbox) latencies on top. This crate
//! generates synthetic workloads that match those distributional shapes:
//!
//! * [`dist`] — composable heavy-tailed samplers (log-normal, Pareto,
//!   mixtures) with analytic quantiles where available;
//! * [`lengths`] — response-length models calibrated per model checkpoint
//!   (Figure 2 left, Figure 17), including length evolution across training;
//! * [`env`] — code-sandbox latency model (Figure 2 right);
//! * [`spec`] — [`spec::TrajectorySpec`]: the system-independent description
//!   of one trajectory (prompt tokens + alternating decode/environment
//!   segments) consumed by every rollout engine, so all systems replay
//!   *identical* workloads;
//! * [`dataset`] — prompt datasets with GRPO group expansion (512 prompts ×
//!   16 responses = the paper's 8192-trajectory global batch).

pub mod dataset;
pub mod dist;
pub mod env;
pub mod lengths;
pub mod spec;

pub use dataset::{Dataset, GroupedBatch};
pub use dist::Dist;
pub use env::SandboxModel;
pub use lengths::{Checkpoint, LengthModel};
pub use spec::{Segment, TrajectorySpec, WorkloadGenerator, WorkloadKind};
