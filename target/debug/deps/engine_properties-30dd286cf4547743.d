/root/repo/target/debug/deps/engine_properties-30dd286cf4547743.d: crates/rollout/tests/engine_properties.rs Cargo.toml

/root/repo/target/debug/deps/libengine_properties-30dd286cf4547743.rmeta: crates/rollout/tests/engine_properties.rs Cargo.toml

crates/rollout/tests/engine_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
