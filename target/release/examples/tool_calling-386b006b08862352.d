/root/repo/target/release/examples/tool_calling-386b006b08862352.d: examples/tool_calling.rs

/root/repo/target/release/examples/tool_calling-386b006b08862352: examples/tool_calling.rs

examples/tool_calling.rs:
