//! Slab storage for the engine's active set.
//!
//! The active set used to be a `BTreeMap<u64, TrajState>`, which allocates
//! a node per ~handful of entries and churns the allocator on every
//! admit/complete cycle. [`TrajSlab`] keeps trajectory states in a dense
//! `Vec<Option<TrajState>>` with a free list, so steady-state admission
//! reuses previously freed slots and performs zero heap allocation. A
//! separate id-sorted `(id, slot)` index gives O(log n) lookup and — the
//! determinism-critical property — iteration in ascending id order, exactly
//! the order a scan of the old id-sorted map produced. Insert/remove
//! memmove the index, which is cheap at realistic concurrencies (≤ 1024)
//! and vastly outnumbered by lookups on the hot path.

use crate::traj::TrajState;

/// Dense slot storage + free list + id-sorted index for resident
/// trajectories. The live count is the index length.
///
/// The slab also carries the checkpoint plane's dirty set: one bit per
/// slot, set by every mutating access ([`get_mut`](TrajSlab::get_mut),
/// [`insert`](TrajSlab::insert)) and cleared wholesale after a delta
/// checkpoint re-encodes the dirty trajectories. The set is a conservative
/// superset — a `get_mut` that ends up not mutating still marks — which
/// costs a redundant re-encode, never a missed one. The bitset is
/// allocation-free on the hot path: it grows only when the slot vector
/// grows, and clearing zeroes the words in place.
#[derive(Debug, Clone, Default)]
pub(crate) struct TrajSlab {
    slots: Vec<Option<TrajState>>,
    free: Vec<u32>,
    /// `(id, slot)` pairs in ascending id order.
    index: Vec<(u64, u32)>,
    /// One dirty bit per slot, in 64-slot words.
    dirty: Vec<u64>,
}

impl TrajSlab {
    pub fn new() -> Self {
        TrajSlab::default()
    }

    /// Live trajectories.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn pos(&self, id: u64) -> Result<usize, usize> {
        self.index.binary_search_by_key(&id, |&(i, _)| i)
    }

    pub fn get(&self, id: u64) -> Option<&TrajState> {
        let p = self.pos(id).ok()?;
        let slot = self.index[p].1 as usize;
        Some(self.slots[slot].as_ref().expect("indexed slot is live"))
    }

    pub fn get_mut(&mut self, id: u64) -> Option<&mut TrajState> {
        let p = self.pos(id).ok()?;
        let slot = self.index[p].1 as usize;
        self.mark_dirty(slot as u32);
        Some(self.slots[slot].as_mut().expect("indexed slot is live"))
    }

    fn mark_dirty(&mut self, slot: u32) {
        let word = slot as usize / 64;
        if word >= self.dirty.len() {
            self.dirty.resize(word + 1, 0);
        }
        self.dirty[word] |= 1 << (slot % 64);
    }

    /// Whether the trajectory under `id` mutated since the last
    /// [`clear_dirty`](TrajSlab::clear_dirty). Unknown ids read as dirty —
    /// the conservative answer for a checkpoint encoder.
    pub fn is_dirty_id(&self, id: u64) -> bool {
        match self.pos(id) {
            Ok(p) => {
                let slot = self.index[p].1 as usize;
                self.dirty
                    .get(slot / 64)
                    .is_none_or(|w| w & (1 << (slot % 64)) != 0)
            }
            Err(_) => true,
        }
    }

    /// Zeroes the dirty set in place (no deallocation) — called after a
    /// delta checkpoint has re-encoded every dirty trajectory.
    pub fn clear_dirty(&mut self) {
        for w in &mut self.dirty {
            *w = 0;
        }
    }

    /// Inserts `st` under `id`, returning the previous state if the id was
    /// already present (the engine asserts it never is). Reuses a freed slot
    /// when one exists.
    pub fn insert(&mut self, id: u64, st: TrajState) -> Option<TrajState> {
        match self.pos(id) {
            Ok(p) => {
                let slot = self.index[p].1;
                self.mark_dirty(slot);
                self.slots[slot as usize].replace(st)
            }
            Err(p) => {
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.slots[s as usize] = Some(st);
                        s
                    }
                    None => {
                        self.slots.push(Some(st));
                        (self.slots.len() - 1) as u32
                    }
                };
                self.mark_dirty(slot);
                self.index.insert(p, (id, slot));
                None
            }
        }
    }

    /// Removes and returns the state under `id`, recycling its slot.
    pub fn remove(&mut self, id: u64) -> Option<TrajState> {
        let p = self.pos(id).ok()?;
        let (_, slot) = self.index.remove(p);
        let st = self.slots[slot as usize].take();
        self.free.push(slot);
        st
    }

    /// Drops every entry, keeping all backing allocations for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.index.clear();
        self.clear_dirty();
    }

    /// Iterates live entries in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &TrajState)> + '_ {
        self.index.iter().map(move |&(id, slot)| {
            (
                id,
                self.slots[slot as usize]
                    .as_ref()
                    .expect("indexed slot is live"),
            )
        })
    }

    /// Copies the live ids, ascending, into `out` (cleared first) — the
    /// allocation-free way for callers to iterate-and-mutate.
    pub fn ids_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.index.iter().map(|&(id, _)| id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_sim::Time;
    use laminar_workload::{Checkpoint, WorkloadGenerator};

    fn st(id: u64) -> TrajState {
        let spec = WorkloadGenerator::single_turn(1, Checkpoint::Math7B).trajectory(id, 0, 0, 1.0);
        TrajState::new(spec, 0, Time::ZERO)
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut s = TrajSlab::new();
        for id in [5u64, 1, 9, 3] {
            assert!(s.insert(id, st(id)).is_none());
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(3).unwrap().spec.id, 3);
        assert!(s.get(4).is_none());
        let removed = s.remove(5).unwrap();
        assert_eq!(removed.spec.id, 5);
        assert!(s.remove(5).is_none());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iteration_is_id_ordered_regardless_of_insertion_order() {
        let mut s = TrajSlab::new();
        for id in [7u64, 2, 11, 4, 0] {
            s.insert(id, st(id));
        }
        let ids: Vec<u64> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 2, 4, 7, 11]);
        let mut scratch = Vec::new();
        s.ids_into(&mut scratch);
        assert_eq!(scratch, ids);
    }

    #[test]
    fn freed_slots_are_reused_without_growing() {
        let mut s = TrajSlab::new();
        for id in 0..8u64 {
            s.insert(id, st(id));
        }
        let dense = s.slots.len();
        for id in 0..8u64 {
            s.remove(id);
            s.insert(100 + id, st(100 + id));
        }
        assert_eq!(s.slots.len(), dense, "churn must recycle slots");
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn dirty_bits_track_mutating_access() {
        let mut s = TrajSlab::new();
        for id in 0..4u64 {
            s.insert(id, st(id));
        }
        // Insert marks dirty.
        assert!((0..4).all(|id| s.is_dirty_id(id)));
        s.clear_dirty();
        assert!((0..4).all(|id| !s.is_dirty_id(id)));
        // get_mut marks only the touched trajectory.
        s.get_mut(2).unwrap();
        assert!(s.is_dirty_id(2));
        assert!(!s.is_dirty_id(1));
        // Shared-ref reads never mark.
        s.get(1).unwrap();
        assert!(!s.is_dirty_id(1));
        // Slot reuse after removal re-marks the new resident.
        s.clear_dirty();
        s.remove(3);
        s.insert(50, st(50));
        assert!(s.is_dirty_id(50));
        // Unknown ids read as dirty (conservative).
        assert!(s.is_dirty_id(999));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = TrajSlab::new();
        for id in 0..16u64 {
            s.insert(id, st(id));
        }
        let cap = s.slots.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.slots.capacity(), cap);
    }
}
