/root/repo/target/release/deps/laminar-2522b4cd40a49006.d: src/lib.rs

/root/repo/target/release/deps/laminar-2522b4cd40a49006: src/lib.rs

src/lib.rs:
