//! Laminar system behaviour tests. Cross-system throughput comparisons
//! against the baselines live in the workspace-level `tests/` suite, which
//! can see both crates.

use super::*;
use laminar_runtime::{RecordingTrace, SpanKind};
use laminar_workload::{Checkpoint, WorkloadGenerator};

fn cfg() -> SystemConfig {
    let mut c = SystemConfig::small_test(WorkloadGenerator::single_turn(3, Checkpoint::Math7B));
    c.train_gpus = 4;
    c.rollout_gpus = 4;
    c
}

#[test]
fn laminar_completes_with_low_staleness() {
    let r = LaminarSystem::default().run(&cfg());
    assert_eq!(r.iteration_secs.len(), 2);
    assert!(r.throughput > 0.0);
    assert!(
        r.max_staleness() <= 4,
        "paper observes ≤4: {}",
        r.max_staleness()
    );
    assert_eq!(
        r.mixed_version_fraction(),
        0.0,
        "single version per trajectory"
    );
}

#[test]
fn rollout_waits_are_small() {
    let r = LaminarSystem::default().run(&cfg());
    // Pull-from-colocated-relay over PCIe: well under the NCCL global
    // sync cost of the same model (Figure 14).
    let nccl = cfg()
        .collective()
        .nccl_broadcast_secs(&cfg().model, cfg().rollout_gpus);
    for &w in &r.rollout_waits {
        assert!(w < nccl, "pull {w} must beat global sync {nccl}");
    }
}

#[test]
fn fault_injection_recovers() {
    let sys = LaminarSystem {
        fault: Some(FaultSpec {
            kill_at: Time::from_secs(60),
            replicas: vec![0, 1],
            recover_after: Duration::from_secs(252),
        }),
        record_timeline: true,
        sample_every: Duration::from_secs(20),
        ..LaminarSystem::default()
    };
    let mut c = cfg();
    c.iterations = 3;
    let r = sys.run(&c);
    assert_eq!(
        r.iteration_secs.len(),
        3,
        "training survives the machine failure"
    );
    assert!(!r.gen_series.is_empty());
}

#[test]
fn trainer_fault_recovers_from_checkpoint() {
    let sys = LaminarSystem {
        trainer_fault: Some(TrainerFaultSpec {
            fail_at: Time::from_secs(120),
            recover_after: Duration::from_secs(90),
        }),
        checkpoint_every: 1,
        ..LaminarSystem::default()
    };
    let mut c = cfg();
    c.iterations = 3;
    c.warmup = 0;
    let clean = LaminarSystem::default().run(&c);
    let hurt = sys.run(&c);
    // Same number of iterations complete; the faulty run is slower but
    // bounded (checkpoint every version => at most one replayed update).
    assert_eq!(hurt.iteration_secs.len(), clean.iteration_secs.len());
    let slow: f64 = hurt.iteration_secs.iter().sum();
    let fast: f64 = clean.iteration_secs.iter().sum();
    assert!(slow >= fast, "fault cannot speed training up");
    assert!(
        slow < fast + 600.0,
        "recovery cost bounded: {slow} vs {fast}"
    );
}

#[test]
fn elastic_replicas_raise_throughput() {
    let mut c = cfg();
    c.iterations = 3;
    c.warmup = 1;
    let base = LaminarSystem::default().run(&c);
    let grown = LaminarSystem {
        elastic: Some(ElasticSpec {
            at: Time::from_secs(30),
            replicas: 4,
        }),
        ..LaminarSystem::default()
    }
    .run(&c);
    assert!(
        grown.throughput > base.throughput,
        "extra rollouts must help a generation-bound job: {} vs {}",
        grown.throughput,
        base.throughput
    );
}

#[test]
fn no_repack_variant_runs() {
    let sys = LaminarSystem {
        repack: false,
        ..LaminarSystem::default()
    };
    let r = sys.run(&cfg());
    assert_eq!(r.repack_events, 0);
    assert!(r.throughput > 0.0);
    assert_eq!(r.system, "laminar-no-repack");
}

#[test]
fn traced_run_covers_every_laminar_phase() {
    let mut trace = RecordingTrace::new();
    let traced = LaminarSystem::default().run_traced(&cfg(), &mut trace);
    let count = |k: SpanKind| trace.of_kind(k).len();
    // Engine phases plus driver phases all present.
    assert!(count(SpanKind::Prefill) > 0);
    assert!(count(SpanKind::DecodeStep) > 0);
    assert!(count(SpanKind::TrainStep) >= cfg().total_iterations());
    assert!(
        count(SpanKind::WeightSync) > 0,
        "relay publishes + replica pulls traced"
    );
    for s in trace.spans() {
        assert!(s.end >= s.start);
    }
    // Replica-side weight pulls carry the replica id; actor publishes are
    // global.
    let syncs = trace.of_kind(SpanKind::WeightSync);
    assert!(
        syncs.iter().any(|s| s.replica.is_none()),
        "actor publish spans"
    );
    // Tracing must not perturb the simulation.
    let plain = LaminarSystem::default().run(&cfg());
    assert_eq!(plain.throughput, traced.throughput);
    assert_eq!(plain.iteration_secs, traced.iteration_secs);
}
