//! The `chaos` experiment: seeded fault schedules against the Laminar
//! system, with every run checked by the lost-work / version / convergence
//! invariant suite (§6 fault tolerance, hardened).
//!
//! Two parts:
//!
//! 1. the fixed *acceptance scenario* — a trainer crash, a relay outage, a
//!    two-replica machine crash, a straggler, and an env stall, all
//!    overlapping — run twice to prove byte-determinism;
//! 2. a seeded sweep: `--chaos-seed N` picks the root seed, each seed
//!    expands to a full fault schedule via
//!    [`laminar_core::generate_schedule`], and the runs fan out across
//!    `--jobs` threads with deterministic, input-ordered output.

use super::Opts;
use laminar_cluster::ModelSpec;
use laminar_core::{
    generate_schedule, overlapping_scenario, ChaosConfig, FaultKind, LaminarSystem, SystemKind,
};
use laminar_sim::Time;
use laminar_workload::{Checkpoint, WorkloadGenerator};
use std::fmt::Write;

fn kind_label(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::ReplicaCrash { .. } => "crash",
        FaultKind::TrainerCrash { .. } => "trainer",
        FaultKind::RelayOutage { .. } => "relay-outage",
        FaultKind::SlowNode { .. } => "slow-node",
        FaultKind::EnvStall { .. } => "env-stall",
    }
}

/// Runs the chaos experiment and renders its report.
pub fn chaos(opts: &Opts) -> String {
    let total = if opts.quick { 16 } else { 64 };
    let mut cfg = opts.config(
        SystemKind::Laminar,
        ModelSpec::qwen_7b(),
        total,
        WorkloadGenerator::single_turn(opts.seed, Checkpoint::Math7B),
    );
    cfg.iterations = 3;
    cfg.warmup = 0;
    let replicas = cfg.replicas();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Chaos — seeded fault schedules with invariant checking\n\
         ({} on {total} GPUs, {replicas} replicas, root chaos seed {})\n",
        cfg.model.name, opts.chaos_seed
    );

    // Part 1: the fixed acceptance scenario, run twice for determinism.
    let sys = LaminarSystem {
        faults: overlapping_scenario(replicas),
        ..LaminarSystem::default()
    };
    let a = sys.run_chaos(&cfg);
    let b = sys.run_chaos(&cfg);
    let deterministic = a.report.throughput.to_bits() == b.report.throughput.to_bits()
        && a.trace.to_jsonl() == b.trace.to_jsonl();
    let violations = a.violations();
    let _ = writeln!(
        out,
        "acceptance scenario: {} faults applied, {} trajectories completed,\n\
         {} redirects, {} repooled, violations: {}, deterministic: {}",
        a.outcome.audit.faults_applied,
        a.outcome.completed(),
        a.outcome.audit.redirects,
        a.outcome.audit.repooled,
        if violations.is_empty() {
            "none".to_string()
        } else {
            violations.join("; ")
        },
        if deterministic { "yes" } else { "NO" },
    );
    if opts.trace.is_some() {
        opts.sink_trace(&a.trace);
    }

    // Part 2: the seeded sweep, fanned across --jobs workers. Output and
    // trace spans are sunk in seed order, so the report is byte-identical
    // at any jobs count.
    let n_seeds = if opts.quick { 4 } else { 8 };
    let seeds: Vec<u64> = (0..n_seeds).map(|k| opts.chaos_seed + k).collect();
    let chaos_cfg = ChaosConfig {
        replicas,
        horizon: if opts.quick {
            Time::from_secs(90)
        } else {
            Time::from_secs(240)
        },
        ..ChaosConfig::default()
    };
    let _ = writeln!(
        out,
        "\n{:>6}  {:>6}  {:>9}  {:>9}  {:>9}  {:>8}  {:>10}  schedule",
        "seed", "faults", "admitted", "completed", "redirects", "repooled", "violations"
    );
    let runs = crate::runner::run_indexed(seeds, opts.jobs, |_, seed| {
        let schedule = generate_schedule(seed, &chaos_cfg);
        let labels: Vec<String> = schedule
            .iter()
            .map(|e| format!("{}@{:.0}s", kind_label(&e.kind), e.at.as_secs_f64()))
            .collect();
        let sys = LaminarSystem {
            faults: schedule,
            ..LaminarSystem::default()
        };
        (seed, labels, sys.run_chaos(&cfg))
    });
    let mut all_green = true;
    for (seed, labels, run) in &runs {
        let violations = run.violations();
        all_green &= violations.is_empty();
        let _ = writeln!(
            out,
            "{:>6}  {:>6}  {:>9}  {:>9}  {:>9}  {:>8}  {:>10}  {}",
            seed,
            run.outcome.audit.faults_applied,
            run.outcome.admitted(),
            run.outcome.completed(),
            run.outcome.audit.redirects,
            run.outcome.audit.repooled,
            violations.len(),
            labels.join(" "),
        );
        if opts.trace.is_some() {
            opts.sink_trace(&run.trace);
        }
    }
    let _ = writeln!(
        out,
        "\nEvery scheduled fault is drawn from SimRng::derive(seed, \"chaos-schedule\", 0);\n\
         the invariant checker proves no trajectory was lost or duplicated, per-replica\n\
         weight versions stayed monotone, and survivors reconverged to the relay version.\n\
         all seeds green: {}",
        if all_green && violations.is_empty() && deterministic {
            "yes"
        } else {
            "NO"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_report_is_green_and_deterministic() {
        let o = Opts::default();
        let s = chaos(&o);
        assert!(s.contains("deterministic: yes"), "{s}");
        assert!(s.contains("all seeds green: yes"), "{s}");
        assert_eq!(s, chaos(&o), "report is reproducible");
    }
}
