#!/usr/bin/env bash
# Lint gate: formatting and clippy across the whole workspace, warnings
# denied. Run before sending a change out for review.
set -euo pipefail
cd "$(dirname "$0")/.."

if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    echo "warning: rustfmt unavailable, skipping format check" >&2
fi

cargo clippy --workspace --all-targets -- -D warnings
echo "lint: clean"

# Smoke-run the benchmark gate so a broken hot path or executor shows up
# before review, not after.
scripts/bench.sh --smoke
