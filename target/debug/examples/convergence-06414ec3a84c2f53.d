/root/repo/target/debug/examples/convergence-06414ec3a84c2f53.d: examples/convergence.rs

/root/repo/target/debug/examples/convergence-06414ec3a84c2f53: examples/convergence.rs

examples/convergence.rs:
