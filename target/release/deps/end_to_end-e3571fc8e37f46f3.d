/root/repo/target/release/deps/end_to_end-e3571fc8e37f46f3.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-e3571fc8e37f46f3: tests/end_to_end.rs

tests/end_to_end.rs:
