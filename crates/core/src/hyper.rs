//! Table 3: hyperparameters of the convergence experiments.

/// The five systems under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Synchronous colocated verl.
    Verl,
    /// One-step staleness pipeline.
    OneStep,
    /// Stream generation pipeline.
    StreamGen,
    /// AReaL-style partial rollout.
    PartialRollout,
    /// Laminar.
    Laminar,
}

impl SystemKind {
    /// All systems, in the paper's presentation order.
    pub fn all() -> [SystemKind; 5] {
        [
            SystemKind::Verl,
            SystemKind::OneStep,
            SystemKind::StreamGen,
            SystemKind::PartialRollout,
            SystemKind::Laminar,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Verl => "verl",
            SystemKind::OneStep => "one-step",
            SystemKind::StreamGen => "stream-gen",
            SystemKind::PartialRollout => "AReaL",
            SystemKind::Laminar => "Laminar",
        }
    }
}

/// One Table 3 column.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperParams {
    /// Training algorithm name.
    pub algorithm: &'static str,
    /// Learning rate.
    pub learning_rate: f64,
    /// Weight decay.
    pub weight_decay: f64,
    /// Upper PPO clip `ε_high`.
    pub clip_high: f64,
    /// Lower PPO clip `ε_low`.
    pub clip_low: f64,
    /// Discount γ.
    pub discount: f64,
    /// GAE λ.
    pub gae_lambda: f64,
    /// GRPO group size.
    pub group_size: usize,
    /// Global training batch size.
    pub global_batch: usize,
    /// Mini-batch size.
    pub minibatch: usize,
    /// Per-rollout max concurrency (asynchronous systems only).
    pub max_concurrency: Option<usize>,
    /// Experience sampling strategy (asynchronous systems only).
    pub sampling: Option<&'static str>,
    /// Staleness bound (`None` = unbounded/emergent).
    pub max_staleness: Option<u64>,
}

impl HyperParams {
    /// The Table 3 column for a system.
    pub fn for_system(kind: SystemKind) -> HyperParams {
        let base = HyperParams {
            algorithm: "GRPO",
            learning_rate: 1e-6,
            weight_decay: 0.1,
            clip_high: 0.28,
            clip_low: 0.2,
            discount: 1.0,
            gae_lambda: 1.0,
            group_size: 16,
            global_batch: 8192,
            minibatch: 2048,
            max_concurrency: None,
            sampling: None,
            max_staleness: None,
        };
        match kind {
            SystemKind::Verl => HyperParams {
                minibatch: 512,
                max_staleness: Some(0),
                ..base
            },
            SystemKind::OneStep | SystemKind::StreamGen => HyperParams {
                max_staleness: Some(1),
                ..base
            },
            SystemKind::PartialRollout => HyperParams {
                algorithm: "Decoupled PPO",
                learning_rate: 2e-5,
                weight_decay: 0.05,
                clip_high: 0.2,
                max_concurrency: Some(256),
                sampling: Some("FIFO"),
                max_staleness: Some(4),
                ..base
            },
            SystemKind::Laminar => HyperParams {
                max_concurrency: Some(256),
                sampling: Some("FIFO"),
                // 4 is the maximum *observed*, not a configured bound.
                max_staleness: Some(4),
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shapes() {
        let verl = HyperParams::for_system(SystemKind::Verl);
        assert_eq!(verl.minibatch, 512);
        assert_eq!(verl.max_staleness, Some(0));
        let areal = HyperParams::for_system(SystemKind::PartialRollout);
        assert_eq!(areal.algorithm, "Decoupled PPO");
        assert_eq!(areal.learning_rate, 2e-5);
        assert_eq!(areal.clip_high, 0.2);
        let lam = HyperParams::for_system(SystemKind::Laminar);
        assert_eq!(lam.algorithm, "GRPO");
        assert_eq!(lam.clip_high, 0.28);
        assert_eq!(
            lam.minibatch, 2048,
            "async systems raise the mini-batch to 2048"
        );
        assert_eq!(lam.sampling, Some("FIFO"));
    }

    #[test]
    fn all_lists_five_systems() {
        let names: Vec<&str> = SystemKind::all().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["verl", "one-step", "stream-gen", "AReaL", "Laminar"]
        );
    }
}
