/root/repo/target/release/deps/laminar_runtime-651cf6715e4966a1.d: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs

/root/repo/target/release/deps/laminar_runtime-651cf6715e4966a1: crates/runtime/src/lib.rs crates/runtime/src/batch.rs crates/runtime/src/config.rs crates/runtime/src/report.rs crates/runtime/src/trace.rs

crates/runtime/src/lib.rs:
crates/runtime/src/batch.rs:
crates/runtime/src/config.rs:
crates/runtime/src/report.rs:
crates/runtime/src/trace.rs:
