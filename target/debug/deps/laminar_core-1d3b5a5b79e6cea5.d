/root/repo/target/debug/deps/laminar_core-1d3b5a5b79e6cea5.d: crates/core/src/lib.rs crates/core/src/convergence.rs crates/core/src/hyper.rs crates/core/src/placement.rs crates/core/src/system/mod.rs crates/core/src/system/driver.rs crates/core/src/system/elastic.rs crates/core/src/system/faults.rs crates/core/src/system/timeline.rs

/root/repo/target/debug/deps/liblaminar_core-1d3b5a5b79e6cea5.rlib: crates/core/src/lib.rs crates/core/src/convergence.rs crates/core/src/hyper.rs crates/core/src/placement.rs crates/core/src/system/mod.rs crates/core/src/system/driver.rs crates/core/src/system/elastic.rs crates/core/src/system/faults.rs crates/core/src/system/timeline.rs

/root/repo/target/debug/deps/liblaminar_core-1d3b5a5b79e6cea5.rmeta: crates/core/src/lib.rs crates/core/src/convergence.rs crates/core/src/hyper.rs crates/core/src/placement.rs crates/core/src/system/mod.rs crates/core/src/system/driver.rs crates/core/src/system/elastic.rs crates/core/src/system/faults.rs crates/core/src/system/timeline.rs

crates/core/src/lib.rs:
crates/core/src/convergence.rs:
crates/core/src/hyper.rs:
crates/core/src/placement.rs:
crates/core/src/system/mod.rs:
crates/core/src/system/driver.rs:
crates/core/src/system/elastic.rs:
crates/core/src/system/faults.rs:
crates/core/src/system/timeline.rs:
