//! The conservative-lookahead sharded driver (DESIGN.md §11).
//!
//! The serial loop routes every internal replica event through the central
//! scheduler as a `ReplicaWake` — one heap push + pop + handler dispatch per
//! event, all on one core. But between two *global interaction points* the
//! replicas never observe each other: weight publishes, trajectory
//! hand-offs into the experience buffer, repack passes, and chaos events
//! are the only cross-replica effects, and all of them either live in the
//! central event queue or are derivable from engine state. That makes the
//! queue a source of *conservative lookahead fences*: every engine may
//! advance freely through its internal events up to a fence with no risk
//! of receiving an effect from the past.
//!
//! PR 7 fenced at the next central event — one barrier per event, which on
//! realistic runs means the barrier dominates (most central events are
//! trainer checks and other bookkeeping that never touch an engine). This
//! driver instead plans a *fence window* per barrier, classifying every
//! pending event by its effect footprint:
//!
//! * **engine-free** (`TrainerCheck`, `DegradeCheck`, trainer failure /
//!   recovery, relay outages, …) — touches scheduler/trainer/buffer state
//!   only. Engine advancement commutes with it, so it is delivered *inside*
//!   the window, after the engines have already run past its instant.
//! * **single-replica** (`ReplicaResume`, `BreakerProbe`) — touches exactly
//!   one replica, and only ever strikes a replica that is *frozen* (dead,
//!   mid weight-pull, or idle with nothing armed), whose engine state at
//!   the event's instant is therefore exactly its current state. Delivered
//!   inside the window under that frozen certificate; if the delivery
//!   restarts the replica, the window breaks so the next barrier advances
//!   it (the break-guard).
//! * **global** (weight publishes / repack / sample ticks / machine kills
//!   and recoveries / stragglers / env stalls / elastic scale-out) — may
//!   read or write any engine at its instant. Deliverable only *at* the
//!   window end, where every engine sits exactly at the fence — the PR-7
//!   position.
//!
//! The window end is the earliest global event, additionally capped by the
//! weight-publish horizon: a trainer completion delivered at `t` spawns
//! `WeightsAvailable` (global) at exactly `t + avail`, where `avail` is a
//! pure function of machine/model config — so capping the window at
//! `min(trainer-event times, earliest hand-off, earliest armed wake) +
//! avail` guarantees no global event can *materialize* strictly inside a
//! window after the engines have advanced past its instant. One barrier
//! then absorbs every interior event; see DESIGN.md §11 for the commuting
//! argument and the overlap-safety sketch.
//!
//! The loop, each window:
//!
//! 1. **Plan.** Scan the pending queue (allocation-free) for the earliest
//!    global event and the spawn-horizon caps; their min is the window end.
//! 2. **Advance.** [`laminar_rollout::shard::parallel_advance_chains`] fans
//!    the engines across up to `shards` scoped threads; each replays its
//!    wake chains up to the window end and — overlapped with the other
//!    shards still advancing — records its replicas' earliest buffered
//!    completion instants into a caller-owned arena. The scope join is the
//!    barrier; the post-barrier hand-off scan is a slice merge feeding an
//!    incrementally maintained min-heap.
//! 3. **Micro-loop.** Completion groups replay at their own instants in
//!    global `(finish time, replica)` order and interior events deliver in
//!    `(time, seq)` order — exactly the serial interleaving — with no
//!    further barrier, until the window is exhausted (or a restart arms a
//!    wake inside it, which re-plans).
//!
//! Determinism: the shard partition decides only *which thread* runs an
//! engine's (self-contained, deterministic) event loop between fences;
//! every cross-engine effect is applied single-threaded at a barrier in a
//! canonical order no thread schedule can perturb, and the interior
//! deliveries observe exactly the state the serial handler would have seen
//! (engine advancement commutes with engine-free handlers; frozen replicas
//! do not advance). Reports and traces are therefore byte-identical at any
//! shard count — and byte-identical to the serial driver, up to the
//! measure-zero case of two *distinct* replicas' events landing on the
//! identical nanosecond, where the serial tiebreak (scheduler FIFO seq) is
//! replaced by replica order. The core test suite asserts report + trace
//! equality of serial vs sharded runs outright, plus a 32-seed chaos sweep
//! of this batching driver against the one-event-per-fence loop (kept
//! below, selected by [`LaminarSystem::fence_batch`] = false).

use super::{Ev, LaminarSystem, World};
use crate::chaos::FaultKind;
use laminar_rollout::shard::parallel_advance_chains;
use laminar_runtime::SystemConfig;
use laminar_sim::{Scheduler, Simulation, Time};
use std::cmp::Reverse;

/// Effect footprint of one central event — what the fence-window planner
/// needs to know about the handler without running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Footprint {
    /// Touches no engine: deliverable anywhere inside a window.
    Free,
    /// Engine-free, but (possibly through a chain of spawns) can produce a
    /// `WeightsAvailable` — the window must end by this event's time plus
    /// the weight-publish horizon so that spawned global events land at or
    /// past the window end.
    Trainer,
    /// Touches exactly replica `r`: deliverable inside a window iff `r` is
    /// frozen (see [`World::frozen`]).
    Single(usize),
    /// May touch any engine: deliverable only at the window end.
    Global,
}

impl LaminarSystem {
    /// Runs the world to completion under the sharded lookahead loop.
    /// Mirrors `execute`'s contract: returns the final world state with
    /// spans still buffered inside.
    pub(super) fn execute_sharded(&self, cfg: &SystemConfig, record_trace: bool) -> World {
        let shards = self.shards.max(1);
        let sim = self.build(cfg, record_trace);
        if self.fence_batch {
            self.run_batched(sim, cfg, shards)
        } else {
            self.run_unbatched(sim, shards)
        }
    }

    /// The PR-7 loop: one central event (or hand-off instant) per fence,
    /// one barrier each. Kept as the equivalence oracle the fence-batching
    /// planner is swept against, and reachable via
    /// [`LaminarSystem::fence_batch`] = false.
    fn run_unbatched(&self, mut sim: Simulation<World>, shards: usize) -> World {
        let mut budget: u64 = 2_000_000_000;
        while !sim.world.done() {
            assert!(budget > 0, "laminar run did not complete its iterations");
            budget -= 1;
            let fence = sim.scheduler.next_event_time().unwrap_or(Time::MAX);
            sim.world.advance_shards(fence, shards);
            sim.world.window_stats.barriers += 1;
            match sim.world.next_handoff(fence) {
                // A completion group strictly inside the window: replay it
                // at its own instant. (At exactly the fence, the central
                // event keeps priority — see the module determinism note.)
                Some(t) if t < fence => {
                    sim.world.window_stats.handoff_replays += 1;
                    sim.world.replay_handoffs(t, &mut sim.scheduler);
                }
                _ => {
                    let stepped = sim.step();
                    assert!(stepped, "laminar run stalled before completing");
                    sim.world.window_stats.central_events += 1;
                    sim.world.window_stats.max_batch = sim.world.window_stats.max_batch.max(1);
                }
            }
        }
        sim.world
    }

    /// The fence-batching loop: one barrier per *window*, every commuting
    /// event inside it delivered with no further synchronization.
    fn run_batched(&self, mut sim: Simulation<World>, cfg: &SystemConfig, shards: usize) -> World {
        // The weight-publish horizon: `TrainerDone` at `t` schedules
        // `WeightsAvailable` at exactly `t + avail` (driver.rs), and both
        // summands are pure functions of machine/model config — a run
        // constant the planner can rely on.
        let avail = sim.world.relay.actor_stall()
            + sim
                .world
                .relay
                .broadcast_time(cfg.rollout_gpus.div_ceil(8).max(1));
        let mut budget: u64 = 2_000_000_000;
        while !sim.world.done() {
            assert!(budget > 0, "laminar run did not complete its iterations");
            budget -= 1;
            assert!(
                sim.scheduler.pending() > 0
                    || sim.world.armed_min().is_some()
                    || sim.world.next_handoff(Time::MAX).is_some(),
                "laminar run stalled before completing"
            );
            // Plan: the widest window such that no engine-footprint event
            // can need delivery strictly inside it. Interior trainer events
            // (and the hand-offs / armed wakes whose completions schedule
            // trainer checks) spawn their `WeightsAvailable` at least
            // `avail` past themselves, hence the three caps.
            let mut terminal = Time::MAX;
            let mut cap = Time::MAX;
            {
                let (sched, world) = (&sim.scheduler, &sim.world);
                sched.scan_pending(|t, _seq, ev| match world.classify(ev) {
                    Footprint::Free => {}
                    Footprint::Trainer => cap = cap.min(t + avail),
                    Footprint::Single(r) if world.frozen(r) => {}
                    Footprint::Single(_) | Footprint::Global => terminal = terminal.min(t),
                });
            }
            if let Some(a) = sim.world.armed_min() {
                cap = cap.min(a + avail);
            }
            if let Some(h) = sim.world.next_handoff(Time::MAX) {
                cap = cap.min(h + avail);
            }
            let mut window_end = terminal.min(cap);
            // End-of-run guard: once the final iteration is in flight,
            // `done()` can flip at an interior `TrainerDone` — and every
            // wake past that instant must never fire (the serial driver's
            // handlers no-op after completion, leaving engines exactly
            // where their last pre-completion wake put them). Degenerate
            // to one-event windows for the closing stretch.
            if sim.world.iterations_done + 1 >= sim.world.cfg.total_iterations() {
                window_end = window_end.min(sim.scheduler.next_event_time().unwrap_or(Time::MAX));
            }
            sim.world.advance_shards(window_end, shards);
            sim.world.window_stats.barriers += 1;
            let mut batch: u64 = 0;
            loop {
                if sim.world.done() {
                    break;
                }
                assert!(budget > 0, "laminar run did not complete its iterations");
                let h = sim.world.next_handoff(window_end);
                let e = sim.scheduler.next_event_time();
                if let Some(ht) = h {
                    // Hand-off strictly before the next central event:
                    // replay it at its own instant (at a tie the central
                    // event keeps priority, as in the unbatched loop).
                    if e.is_none_or(|et| ht < et) {
                        budget -= 1;
                        sim.world.window_stats.handoff_replays += 1;
                        let rearmed = sim.world.replay_handoffs(ht, &mut sim.scheduler);
                        if rearmed.is_some_and(|w| w <= window_end) {
                            // A restarted replica armed a wake inside the
                            // window: it must advance again before anything
                            // later is observed. Break-guard → new window.
                            break;
                        }
                        continue;
                    }
                }
                let Some(et) = e else { break };
                if et > window_end {
                    break;
                }
                // Interior deliveries must commute with the advancement the
                // engines have already done; events exactly at the window
                // end see every engine at the fence (the PR-7 position) and
                // need no check.
                let mut single_r = None;
                if et < window_end {
                    let (_, _, ev) = sim.scheduler.peek().expect("pending event vanished");
                    match sim.world.classify(ev) {
                        Footprint::Free | Footprint::Trainer => {}
                        Footprint::Single(r) => {
                            debug_assert!(
                                sim.world.frozen(r),
                                "planned-interior single-replica event on unfrozen replica {r}"
                            );
                            if !sim.world.frozen(r) {
                                break;
                            }
                            single_r = Some(r);
                        }
                        Footprint::Global => {
                            debug_assert!(
                                false,
                                "global event materialized strictly inside a fence window"
                            );
                            break;
                        }
                    }
                }
                budget -= 1;
                let stepped = sim.step();
                assert!(stepped, "laminar run stalled before completing");
                batch += 1;
                if let Some(r) = single_r {
                    // The resume/probe may have restarted `r`: if it armed a
                    // wake inside the window the engine must advance again,
                    // and either way `r` is no longer certifiably frozen for
                    // any remaining interior event — re-plan.
                    let rearmed = sim.world.armed[r].next().is_some_and(|t| t <= window_end);
                    if rearmed || !sim.world.frozen(r) {
                        break;
                    }
                }
            }
            sim.world.window_stats.central_events += batch;
            if batch > 1 {
                sim.world.window_stats.batched_windows += 1;
            }
            sim.world.window_stats.max_batch = sim.world.window_stats.max_batch.max(batch);
        }
        sim.world
    }
}

impl World {
    /// Effect footprint of `ev` — see [`Footprint`]. Fault events are
    /// classified by their kind: trainer crashes and relay outages touch no
    /// engine (the former caps the window like any trainer event, since its
    /// recovery chain can reach a weight publish), while kills, stragglers,
    /// and env stalls strike engines and stay global.
    pub(super) fn classify(&self, ev: &Ev) -> Footprint {
        match ev {
            Ev::TrainerCheck | Ev::TrainerDone { .. } | Ev::TrainerRecover => Footprint::Trainer,
            Ev::DegradeCheck => Footprint::Free,
            Ev::ReplicaResume { r, .. } | Ev::BreakerProbe { r } => Footprint::Single(*r),
            Ev::Fault { idx } => match &self.opts.faults[*idx].kind {
                FaultKind::TrainerCrash { .. } => Footprint::Trainer,
                FaultKind::RelayOutage { .. } => Footprint::Free,
                _ => Footprint::Global,
            },
            _ => Footprint::Global,
        }
    }

    /// True when replica `r` provably cannot advance before the next global
    /// interaction: dead, mid weight-pull, or idle with nothing armed and
    /// nothing buffered. A frozen replica's engine state at any interior
    /// instant equals its current state, which is the certificate that lets
    /// resume/probe events deliver inside a window.
    pub(super) fn frozen(&self, r: usize) -> bool {
        r >= self.engines.len()
            || !self.alive[r]
            || self.pulling[r]
            || (self.engines[r].is_idle()
                && self.armed[r].is_empty()
                && self.engines[r].first_completion_time().is_none())
    }

    /// Earliest armed wake across the live fleet — a lower bound on any
    /// hand-off the next advance can surface (completions materialize only
    /// at wake-settlement instants).
    fn armed_min(&self) -> Option<Time> {
        self.armed
            .iter()
            .enumerate()
            .filter(|(r, _)| self.alive[*r] && !self.pulling[*r])
            .filter_map(|(_, q)| q.next())
            .min()
    }

    /// Replays every engine's wake chains up to `fence` across the shard
    /// workers. Dead and mid-pull replicas are flagged ineligible: their
    /// due wakes are consumed without firing, exactly as the serial
    /// handler's alive/pulling guard consumes them at their instants.
    /// (Eligibility only changes at central events and hand-off replays,
    /// i.e. at window boundaries, so a per-window flag is exact.)
    ///
    /// Both the eligibility flags and the per-replica completion heads are
    /// written into `World`-owned arenas — no allocation per window once
    /// the buffers have grown to the fleet size — and the heads (computed
    /// inside the shard workers, overlapped with still-advancing shards)
    /// are merged into the incremental hand-off min on return.
    pub(super) fn advance_shards(&mut self, fence: Time, shards: usize) {
        let n = self.engines.len();
        {
            let (alive, pulling, elig) = (&self.alive, &self.pulling, &mut self.eligible_scratch);
            elig.clear();
            elig.extend(alive.iter().zip(pulling).map(|(a, p)| *a && !*p));
        }
        if self.heads_scratch.len() != n {
            self.heads_scratch.resize(n, None);
        }
        parallel_advance_chains(
            &mut self.engines,
            &mut self.armed,
            &self.eligible_scratch,
            &mut self.heads_scratch,
            fence,
            shards,
        );
        if self.completion_heads.len() != n {
            self.completion_heads.resize(n, None);
        }
        for r in 0..n {
            let h = self.heads_scratch[r];
            if h != self.completion_heads[r] {
                self.completion_heads[r] = h;
                if let Some(t) = h {
                    self.handoff_heap.push(Reverse((t, r)));
                }
            }
        }
    }

    /// Earliest buffered completion instant at or before `fence` across the
    /// live fleet — the next hand-off interaction the central clock must
    /// observe. Dead replicas keep their undrained completions (the chaos
    /// audit counts them as held work, exactly as the serial path does).
    ///
    /// Served from the incrementally maintained min-heap over cached
    /// completion heads rather than an O(replicas) engine scan: stale
    /// entries (the cache moved on) and ineligible replicas are lazily
    /// discarded on pop. An ineligible replica's entry is re-pushed by
    /// [`World::repush_head`] when it resumes; a dead one only returns
    /// through machine recovery, which replaces the engine outright.
    pub(super) fn next_handoff(&mut self, fence: Time) -> Option<Time> {
        while let Some(&Reverse((t, r))) = self.handoff_heap.peek() {
            if self.completion_heads.get(r).copied().flatten() != Some(t) {
                self.handoff_heap.pop(); // stale: the head moved on
                continue;
            }
            if !self.alive[r] || self.pulling[r] {
                self.handoff_heap.pop(); // held work; re-pushed on resume
                continue;
            }
            return if t <= fence { Some(t) } else { None };
        }
        None
    }

    /// Recomputes replica `r`'s cached completion head from the engine and
    /// (re-)pushes it into the hand-off min. Called wherever a central path
    /// moves completions or restores a replica's eligibility.
    pub(super) fn repush_head(&mut self, r: usize) {
        if self.completion_heads.len() <= r {
            self.completion_heads.resize(r + 1, None);
        }
        let h = self.engines[r].first_completion_time();
        self.completion_heads[r] = h;
        if let Some(t) = h {
            self.handoff_heap.push(Reverse((t, r)));
        }
    }

    /// Replays every completion group that finished at exactly `t`, in
    /// replica order, through the shared serial delivery path; a replica
    /// that went idle and has nothing further buffered restarts at `t` —
    /// its last event's instant, matching the serial wake chain. Returns
    /// the earliest wake any restart armed, the batched driver's
    /// break-guard signal.
    pub(super) fn replay_handoffs(&mut self, t: Time, sched: &mut Scheduler<Ev>) -> Option<Time> {
        let mut rearmed: Option<Time> = None;
        for r in 0..self.engines.len() {
            if !self.alive[r] || self.pulling[r] {
                continue;
            }
            if self.completion_heads.get(r).copied().flatten() != Some(t) {
                continue;
            }
            if self.engines[r].first_completion_time() != Some(t) {
                // A central handler replaced or drained the engine since the
                // last barrier (machine recovery does): heal the cache.
                self.repush_head(r);
                continue;
            }
            let group = self.engines[r].take_completions_through(t);
            self.process_completions(r, group, t, sched);
            if self.engines[r].is_idle() && self.engines[r].first_completion_time().is_none() {
                self.refresh_and_restart(r, t, sched);
                if let Some(w) = self.armed[r].next() {
                    rearmed = Some(rearmed.map_or(w, |x: Time| x.min(w)));
                }
            }
            self.repush_head(r);
        }
        rearmed
    }
}
