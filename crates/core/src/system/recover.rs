//! The recovery plane: graceful degradation under sustained capacity loss
//! and deterministic checkpoint/restore (DESIGN.md §8).
//!
//! **Degradation.** Every fault path that changes fleet capacity calls
//! [`World::note_capacity`]. When the alive fraction drops below the
//! configured threshold, a [`Ev::DegradeCheck`] is armed one degraded
//! window later; if capacity is still low when it fires, the driver enters
//! degraded mode — the per-replica admission target shrinks and a
//! configured staleness cap is relaxed by a bounded allowance — and emits a
//! [`SpanKind::Degraded`] marker. Capacity returning (machine recovery or
//! elastic scale-out) exits the mode and emits a [`SpanKind::Recovered`]
//! span covering the whole episode, which is what the recovery benchmark
//! reads MTTR from.
//!
//! **Checkpoint/restore.** A [`LaminarSnapshot`] is a deep clone of the
//! whole `Simulation<World>` taken between events at a cadence boundary.
//! Cloning a `BinaryHeap` or `HashMap` copies its backing storage verbatim,
//! so the clone pops and iterates in exactly the original order; together
//! with the seeded RNG being part of the state, a resumed run replays the
//! remaining events byte-identically — same report, same trace — which
//! `laminar_runtime::check_resume_equivalence` asserts outright.

use super::{Ev, LaminarSystem, World};
use laminar_data::{Eviction, ExperienceBuffer, PartialResponsePool, Sampler};
use laminar_runtime::delta::{
    encode_report_plane, encode_span_batch, fnv1a_bytes, DeltaStore, StateImage, StatePlane,
    WordEnc, SPAN_BATCH,
};
use laminar_runtime::recovery::{DeltaCheckpoint, Recoverable, RunSnapshot};
use laminar_runtime::{RunReport, SpanKind, SystemConfig, TraceSink, TraceSpan};
use laminar_sim::{Duration, Scheduler, Simulation, Time};
use std::collections::{HashMap, HashSet};

impl World {
    fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Re-evaluates fleet capacity after any event that changes it.
    /// Arms the degradation timer when capacity drops below the threshold;
    /// ends the degraded episode as soon as capacity returns.
    pub(super) fn note_capacity(&mut self, now: Time, sched: &mut Scheduler<Ev>) {
        let frac = self.alive_count() as f64 / self.alive.len().max(1) as f64;
        if frac < self.opts.recovery.degraded_alive_frac {
            if self.capacity_low_since.is_none() {
                self.capacity_low_since = Some(now);
                sched.after(self.opts.recovery.degraded_window, Ev::DegradeCheck);
            }
        } else {
            self.capacity_low_since = None;
            if self.degraded {
                self.exit_degraded(now);
            }
        }
    }

    /// The armed degradation timer fired: enter degraded mode iff capacity
    /// has stayed low for the whole window (transient dips are absorbed).
    pub(super) fn degrade_check(&mut self, now: Time) {
        if self.degraded {
            return;
        }
        let Some(since) = self.capacity_low_since else {
            return;
        };
        if now.since(since) >= self.opts.recovery.degraded_window {
            self.enter_degraded(now);
        }
    }

    /// The staleness cap currently in force: the configured cap, plus the
    /// relax allowance only while degraded.
    fn effective_staleness_cap(&self) -> Option<u64> {
        self.opts.staleness_cap.map(|cap| {
            if self.degraded {
                cap + self.opts.recovery.staleness_relax
            } else {
                cap
            }
        })
    }

    fn enter_degraded(&mut self, now: Time) {
        self.degraded = true;
        self.degraded_entered = now;
        self.audit.degraded_entries += 1;
        self.span(SpanKind::Degraded, now, now, None, self.relay_version, 0);
        if let Some(cap) = self.effective_staleness_cap() {
            self.buffer
                .set_sampler(Sampler::StalenessCapped { max_staleness: cap });
        }
    }

    fn exit_degraded(&mut self, now: Time) {
        self.degraded = false;
        self.span(
            SpanKind::Recovered,
            self.degraded_entered,
            now,
            None,
            self.relay_version,
            0,
        );
        if let Some(cap) = self.effective_staleness_cap() {
            self.buffer
                .set_sampler(Sampler::StalenessCapped { max_staleness: cap });
        }
    }
}

/// A deterministic checkpoint of a Laminar run: the complete simulation
/// state (engines with their event heaps and resident trajectories, the
/// experience and partial-response buffers, actor and relay versions, the
/// driver clock, and every pending simulation event), frozen between
/// events at a cadence boundary.
#[derive(Clone)]
pub struct LaminarSnapshot {
    sim: Simulation<World>,
}

impl LaminarSnapshot {
    /// Virtual time the snapshot was taken at (all events up to and
    /// including this instant have executed).
    pub fn at(&self) -> Time {
        self.sim.scheduler.now()
    }
}

impl LaminarSystem {
    /// The serial twin a checkpointed run executes: snapshots freeze the
    /// run between queue events, a boundary the sharded driver's
    /// out-of-queue fence loop doesn't expose. The two drivers produce
    /// byte-identical output, so resume equivalence is unaffected — but the
    /// override is no longer silent: a run explicitly configured with
    /// `shards > 1` gets a notice that checkpointing drove it serially.
    fn checkpoint_serial(&self) -> LaminarSystem {
        if self.shards > 1 {
            eprintln!(
                "laminar: checkpointed run drives the serial wake loop \
                 (shards={} requested; output is byte-identical either way)",
                self.shards
            );
        }
        LaminarSystem {
            shards: 1,
            ..self.clone()
        }
    }
}

impl Recoverable for LaminarSystem {
    type Snapshot = LaminarSnapshot;

    fn run_checkpointed(
        &self,
        cfg: &SystemConfig,
        every: Duration,
        trace: &mut dyn TraceSink,
    ) -> (RunReport, Vec<RunSnapshot<LaminarSnapshot>>) {
        assert!(
            every > Duration::ZERO,
            "checkpoint cadence must be positive"
        );
        let serial = self.checkpoint_serial();
        let mut sim = serial.build(cfg, trace.enabled());
        let mut snapshots = Vec::new();
        let mut deadline = Time::ZERO + every;
        loop {
            let finished = sim.run_while_until(|w| !w.done(), deadline, 2_000_000_000);
            if finished {
                break;
            }
            assert!(
                sim.scheduler.next_event_time().is_some(),
                "laminar run stalled before completing its iterations"
            );
            snapshots.push(RunSnapshot {
                at: deadline,
                index: snapshots.len(),
                state: LaminarSnapshot { sim: sim.clone() },
            });
            deadline += every;
        }
        let mut world = sim.world;
        world.drain_spans(trace);
        (world.finish_report(), snapshots)
    }

    /// The incremental override: the same cadence loop as
    /// [`run_checkpointed`](Recoverable::run_checkpointed), but each cadence
    /// point builds its [`StateImage`] through a [`DeltaEncoder`] that reuses
    /// cached chunks for every clean plane — slab dirty bits gate the
    /// per-trajectory chunks, mutation epochs gate the buffer and partial
    /// pools, and span batches are extended append-only. The committed image
    /// is byte-identical to a fresh [`encode_state`](Recoverable::encode_state)
    /// of the same snapshot (the property tests hold it to that); only the
    /// encoding work is O(dirty).
    fn run_delta_checkpointed(
        &self,
        cfg: &SystemConfig,
        every: Duration,
        trace: &mut dyn TraceSink,
        store: &mut DeltaStore,
    ) -> (RunReport, Vec<DeltaCheckpoint<LaminarSnapshot>>) {
        assert!(
            every > Duration::ZERO,
            "checkpoint cadence must be positive"
        );
        let serial = self.checkpoint_serial();
        let mut sim = serial.build(cfg, trace.enabled());
        let mut enc = DeltaEncoder::default();
        let mut checkpoints: Vec<DeltaCheckpoint<LaminarSnapshot>> = Vec::new();
        let mut deadline = Time::ZERO + every;
        loop {
            let finished = sim.run_while_until(|w| !w.done(), deadline, 2_000_000_000);
            if finished {
                break;
            }
            assert!(
                sim.scheduler.next_event_time().is_some(),
                "laminar run stalled before completing its iterations"
            );
            let image = enc.encode(&sim);
            enc.after_commit(&mut sim.world);
            let (manifest_id, stats) = store.commit(deadline, &image);
            checkpoints.push(DeltaCheckpoint {
                at: deadline,
                index: checkpoints.len(),
                manifest_id,
                stats,
                state: LaminarSnapshot { sim: sim.clone() },
            });
            deadline += every;
        }
        let mut world = sim.world;
        world.drain_spans(trace);
        (world.finish_report(), checkpoints)
    }

    fn resume(&self, snapshot: LaminarSnapshot, trace: &mut dyn TraceSink) -> RunReport {
        let mut sim = snapshot.sim;
        let finished = sim.run_while(|w| !w.done(), 2_000_000_000);
        assert!(finished, "resumed laminar run did not complete");
        let mut world = sim.world;
        world.drain_spans(trace);
        world.finish_report()
    }

    fn encode_state(snapshot: &LaminarSnapshot) -> StateImage {
        build_image(&snapshot.sim, None)
    }
}

// ---------------------------------------------------------------------
// Canonical state image
// ---------------------------------------------------------------------

/// Fixed plane order of the Laminar state image. Every mutable plane of the
/// world is covered; chunk boundaries sit at natural state granularity —
/// one chunk per resident trajectory, per pending event, per pooled prompt,
/// per partial response, per buffered experience — so removing one entry
/// never shifts a neighbour's chunk key, and [`PAGE_WORDS`]-paged streams
/// carry the flat scalar/report tails.
///
/// [`PAGE_WORDS`]: laminar_runtime::delta::PAGE_WORDS
fn build_image(sim: &Simulation<World>, mut enc: Option<&mut DeltaEncoder>) -> StateImage {
    let w = &sim.world;
    let mut img = StateImage::new();
    img.push_plane(driver_plane(sim));
    img.push_plane(audit_plane(w));
    img.push_plane(queue_plane(&sim.scheduler));
    img.push_plane(pool_plane(w));

    let partials_plane = match enc.as_deref_mut() {
        Some(e) if e.partials_epoch == Some(w.partials.epoch()) => {
            plane_from_chunks("partials", e.partials_chunks.clone())
        }
        other => {
            let chunks = partials_chunks(&w.partials);
            if let Some(e) = other {
                e.partials_epoch = Some(w.partials.epoch());
                e.partials_chunks = chunks.clone();
            }
            plane_from_chunks("partials", chunks)
        }
    };
    img.push_plane(partials_plane);

    let buffer_plane = match enc.as_deref_mut() {
        Some(e) if e.buffer_epoch == Some(w.buffer.epoch()) => {
            plane_from_chunks("buffer", e.buffer_chunks.clone())
        }
        other => {
            let chunks = buffer_chunks(&w.buffer);
            if let Some(e) = other {
                e.buffer_epoch = Some(w.buffer.epoch());
                e.buffer_chunks = chunks.clone();
            }
            plane_from_chunks("buffer", chunks)
        }
    };
    img.push_plane(buffer_plane);

    img.push_plane(engines_plane(
        w,
        enc.as_deref_mut().map(|e| &mut e.traj_chunks),
    ));
    img.push_plane(spans_plane(w, enc));

    img.push_plane(encode_report_plane("report", &w.report));
    img
}

fn plane_from_chunks(name: &'static str, chunks: Vec<Vec<u64>>) -> StatePlane {
    let mut plane = StatePlane::new(name);
    for c in chunks {
        plane.push_chunk(c);
    }
    plane
}

/// The driver's flat scalar stream: scheduler counters, version state,
/// trainer state, RNG words, per-replica liveness/breaker state, the actor
/// checkpoint store, the dataset cursor, and the manager's health map.
fn driver_plane(sim: &Simulation<World>) -> StatePlane {
    let w = &sim.world;
    let mut e = WordEnc::new();
    e.t(sim.scheduler.now())
        .u(sim.scheduler.scheduled())
        .u(sim.scheduler.delivered())
        .z(sim.scheduler.pending())
        .u(w.version)
        .u(w.relay_version)
        .u(w.batches_issued)
        .z(w.replica_batch)
        .b(w.trainer_busy)
        .b(w.trainer_failed)
        .u(w.trainer_epoch)
        .u(w.trainer_resume_to)
        .t(w.relay_blocked_until)
        .z(w.iterations_done)
        .u(w.last_iter_duration.as_nanos())
        .t(w.last_train_done)
        .f(w.gen_tokens_prev)
        .t(w.gen_sample_prev)
        .f(w.train_tokens_cum)
        .f(w.train_tokens_prev)
        .b(w.record_trace)
        .t(w.trainer_started)
        .t(w.trainer_free_at)
        .b(w.degraded)
        .ot(w.capacity_low_since)
        .t(w.degraded_entered)
        .b(w.sharded);
    for word in w.rng.state_words() {
        e.u(word);
    }
    e.z(w.alive.len());
    for &a in &w.alive {
        e.b(a);
    }
    for &p in &w.pulling {
        e.b(p);
    }
    e.z(w.armed.len());
    for q in &w.armed {
        e.b(q.is_empty());
    }
    let mut words = e.take();
    for b in &w.breakers {
        b.state_words(&mut words);
    }
    words.push(w.checkpoints.every);
    words.push(w.checkpoints.history_len() as u64);
    for c in w.checkpoints.history() {
        words.push(c.version);
        words.push(c.written_at.as_nanos());
    }
    let (next_prompt, next_traj) = w.dataset.cursor();
    words.push(next_prompt);
    words.push(next_traj);
    w.manager.checkpoint_words(&mut words);
    let mut plane = StatePlane::new("driver");
    plane.extend_paged(&words);
    plane
}

/// The chaos audit's lost-work bookkeeping (BTree containers iterate in
/// key order, so the streams are canonical). Sectioned so growth in one
/// region never shifts another: a scalar head chunk frames the sections,
/// the admitted set and completed map — whose keys are ascending ids, so
/// growth appends — are each their own paged stream, and each replica's
/// version history gets its own chunk (it only changes when that replica
/// syncs weights).
fn audit_plane(w: &World) -> StatePlane {
    let a = &w.audit;
    let mut plane = StatePlane::new("audit");
    let mut head = vec![
        a.faults_applied,
        a.redirects,
        a.repooled,
        a.breaker_blocked,
        a.degraded_entries,
        a.admitted.len() as u64,
        a.completion_log.len() as u64,
        a.version_history.len() as u64,
        a.violations.len() as u64,
    ];
    head.extend(a.violations.iter().map(|v| fnv1a_bytes(v.as_bytes())));
    plane.push_chunk(head);
    let admitted: Vec<u64> = a.admitted.iter().copied().collect();
    plane.extend_paged(&admitted);
    // The completion log is the append-only view of `completed` (which is
    // its per-id multiset), so paging it covers the map without the
    // mid-stream shifts out-of-id-order completions would cause.
    plane.extend_paged(&a.completion_log);
    for (r, h) in a.version_history.iter().enumerate() {
        let mut words = vec![r as u64, h.len() as u64];
        words.extend(h.iter().copied());
        plane.push_chunk(words);
    }
    plane
}

/// One chunk per pending simulation event, in delivery order `(at, seq)` —
/// a total order, so the stream is exactly the remaining event schedule.
fn queue_plane(sched: &Scheduler<Ev>) -> StatePlane {
    let mut plane = StatePlane::new("queue");
    for (at, seq, ev) in sched.pending_entries() {
        let mut words = vec![at.as_nanos(), seq];
        encode_ev(ev, &mut words);
        plane.push_chunk(words);
    }
    plane
}

/// Canonical event encoding: a stable discriminant plus the payload.
fn encode_ev(ev: &Ev, out: &mut Vec<u64>) {
    match ev {
        Ev::ReplicaWake { r, epoch } => {
            out.extend([0, *r as u64, *epoch]);
        }
        Ev::ReplicaResume { r, version } => {
            out.extend([1, *r as u64, *version]);
        }
        Ev::TrainerCheck => out.push(2),
        Ev::TrainerDone { tokens, epoch } => {
            out.extend([3, tokens.to_bits(), *epoch]);
        }
        Ev::WeightsAvailable { version } => out.extend([4, *version]),
        Ev::RepackTick => out.push(5),
        Ev::SampleTick => out.push(6),
        Ev::Fault { idx } => out.extend([7, *idx as u64]),
        Ev::RecoverMachine { replicas } => {
            out.extend([8, replicas.len() as u64]);
            out.extend(replicas.iter().map(|&r| r as u64));
        }
        Ev::SlowNodeEnd { r } => out.extend([9, *r as u64]),
        Ev::TrainerRecover => out.push(10),
        Ev::AddReplicas { count } => out.extend([11, *count as u64]),
        Ev::DegradeCheck => out.push(12),
        Ev::BreakerProbe { r } => out.extend([13, *r as u64]),
    }
}

/// One chunk per pooled prompt assignment, in admission (deque) order.
fn pool_plane(w: &World) -> StatePlane {
    let mut plane = StatePlane::new("pool");
    for spec in &w.pool {
        let mut words = Vec::new();
        spec.encode_words(&mut words);
        plane.push_chunk(words);
    }
    plane
}

/// Pool counters plus one chunk per in-flight partial response, id-sorted.
fn partials_chunks(p: &PartialResponsePool) -> Vec<Vec<u64>> {
    let mut chunks = vec![vec![p.total_updates(), p.recovered(), p.len() as u64]];
    let mut ids = p.ids();
    ids.sort_unstable();
    for id in ids {
        let mut words = Vec::new();
        p.get(id)
            .expect("listed id present")
            .encode_words(&mut words);
        chunks.push(words);
    }
    chunks
}

/// Buffer strategy + flow counters, then one chunk per buffered experience
/// in deque (write) order.
fn buffer_chunks(b: &ExperienceBuffer) -> Vec<Vec<u64>> {
    let mut head = WordEnc::new();
    match b.sampler() {
        Sampler::Fifo => head.u(0),
        Sampler::Lifo => head.u(1),
        Sampler::StalenessCapped { max_staleness } => head.u(2).u(max_staleness),
        Sampler::Random => head.u(3),
    };
    match b.eviction() {
        Eviction::None => head.u(0),
        Eviction::DropOldest { capacity } => head.u(1).z(capacity),
        Eviction::MaxStaleness { max_staleness } => head.u(2).u(max_staleness),
    };
    let stats = b.stats();
    head.z(stats.occupancy)
        .u(stats.written)
        .u(stats.sampled)
        .u(stats.evicted);
    let mut chunks = vec![head.take()];
    for exp in b.iter() {
        let mut words = Vec::new();
        exp.encode_words(&mut words);
        chunks.push(words);
    }
    chunks
}

/// Per engine: the scalar chunk, one chunk per resident (active)
/// trajectory, one per env-waiting trajectory, one per undrained
/// completion. Active-trajectory chunks are the slab-dirty-bit cache
/// domain: a clean bit proves the trajectory was untouched since the last
/// commit, so its cached encoding is reused verbatim.
fn engines_plane(w: &World, mut cache: Option<&mut HashMap<(usize, u64), Vec<u64>>>) -> StatePlane {
    let mut plane = StatePlane::new("engines");
    for (r, eng) in w.engines.iter().enumerate() {
        let mut scalars = Vec::new();
        eng.checkpoint_scalar_words(&mut scalars);
        plane.push_chunk(scalars);
        for (id, st) in eng.active_states() {
            let chunk = match cache.as_deref_mut() {
                Some(c) if !eng.traj_dirty(id) && c.contains_key(&(r, id)) => c[&(r, id)].clone(),
                c => {
                    let mut words = Vec::new();
                    st.encode_words(&mut words);
                    if let Some(c) = c {
                        c.insert((r, id), words.clone());
                    }
                    words
                }
            };
            plane.push_chunk(chunk);
        }
        for st in eng.waiting_states() {
            let mut words = Vec::new();
            st.encode_words(&mut words);
            plane.push_chunk(words);
        }
        for done in eng.completions() {
            let mut words = Vec::new();
            done.encode_words(&mut words);
            plane.push_chunk(words);
        }
    }
    plane
}

/// Driver span batches followed by each engine's, [`SPAN_BATCH`] spans per
/// chunk. Span streams are append-only between commits (engines buffer
/// spans until the final drain), so only the tail batch of each source
/// changes per cadence — and the caches reuse the frozen full batches.
fn spans_plane(w: &World, enc: Option<&mut DeltaEncoder>) -> StatePlane {
    let mut plane = StatePlane::new("spans");
    match enc {
        Some(e) => {
            e.span_caches
                .resize_with(w.engines.len() + 1, SpanCache::default);
            append_span_batches(&mut plane, &w.trace_spans, Some(&mut e.span_caches[0]));
            for (r, eng) in w.engines.iter().enumerate() {
                append_span_batches(
                    &mut plane,
                    eng.trace_spans(),
                    Some(&mut e.span_caches[r + 1]),
                );
            }
        }
        None => {
            append_span_batches(&mut plane, &w.trace_spans, None);
            for eng in &w.engines {
                append_span_batches(&mut plane, eng.trace_spans(), None);
            }
        }
    }
    plane
}

fn append_span_batches(plane: &mut StatePlane, spans: &[TraceSpan], cache: Option<&mut SpanCache>) {
    let Some(cache) = cache else {
        for batch in spans.chunks(SPAN_BATCH) {
            plane.push_chunk(encode_span_batch(batch));
        }
        return;
    };
    // The cache holds only *full* batches, which never change while the
    // stream keeps appending. A source that shrank or rewrote history (an
    // engine rebuilt by machine recovery) fails the boundary-span check and
    // re-encodes from scratch.
    let covered = cache.batches.len() * SPAN_BATCH;
    let intact =
        covered <= spans.len() && (covered == 0 || cache.boundary == Some(spans[covered - 1]));
    if !intact {
        cache.batches.clear();
        cache.boundary = None;
    }
    let covered = cache.batches.len() * SPAN_BATCH;
    for b in &cache.batches {
        plane.push_chunk(b.clone());
    }
    for batch in spans[covered..].chunks(SPAN_BATCH) {
        let words = encode_span_batch(batch);
        if batch.len() == SPAN_BATCH {
            cache.batches.push(words.clone());
            cache.boundary = Some(batch[SPAN_BATCH - 1]);
        }
        plane.push_chunk(words);
    }
}

/// Cached encodings carried between cadence points by the incremental
/// encoder. Every cache is gated by a dirtiness witness — slab dirty bits,
/// pool mutation epochs, or span-stream append-only checks — and the
/// fallback on any miss is a fresh encode, so a stale witness can only cost
/// CPU, never correctness (and the equivalence property tests pin even
/// that: incremental and fresh images must be byte-identical).
#[derive(Default)]
struct DeltaEncoder {
    /// Active-trajectory chunks keyed `(replica, trajectory id)`.
    traj_chunks: HashMap<(usize, u64), Vec<u64>>,
    buffer_epoch: Option<u64>,
    buffer_chunks: Vec<Vec<u64>>,
    partials_epoch: Option<u64>,
    partials_chunks: Vec<Vec<u64>>,
    /// Index 0 is the driver's span stream; engine `r` is at `r + 1`.
    span_caches: Vec<SpanCache>,
}

#[derive(Default)]
struct SpanCache {
    batches: Vec<Vec<u64>>,
    /// The last span covered by `batches`, revalidated each encode.
    boundary: Option<TraceSpan>,
}

impl DeltaEncoder {
    fn encode(&mut self, sim: &Simulation<World>) -> StateImage {
        build_image(sim, Some(self))
    }

    /// Rebaselines the dirty sets after a commit: every cached chunk now
    /// reflects the committed state, so slab dirty bits reset and cache
    /// entries for departed trajectories are dropped.
    fn after_commit(&mut self, w: &mut World) {
        let live: HashSet<(usize, u64)> = w
            .engines
            .iter()
            .enumerate()
            .flat_map(|(r, e)| e.active_states().map(move |(id, _)| (r, id)))
            .collect();
        self.traj_chunks.retain(|k, _| live.contains(k));
        for e in &mut w.engines {
            e.clear_traj_dirty();
        }
    }
}
