//! Property-based tests of core invariants across crates.

use laminar::cluster::{DecodeModel, GpuSpec, ModelSpec};
use laminar::prelude::*;
use laminar::rollout::{EngineConfig, ReplicaLoad};
use laminar::sim::Time;
use laminar::workload::Segment;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 never overfills a destination and never releases a
    /// replica into itself or into another released replica.
    #[test]
    fn repack_plan_respects_capacity_and_disjointness(
        loads in proptest::collection::vec(
            (0.0f64..500.0, 1usize..32), 2..24
        ),
        c_max in 200.0f64..800.0,
        b in 8usize..64,
    ) {
        let replicas: Vec<ReplicaLoad> = loads
            .iter()
            .enumerate()
            .map(|(i, &(kv, reqs))| ReplicaLoad {
                replica: i,
                kv_used: kv,
                kv_reserved: kv,
                kv_prev: kv + 1.0,
                n_reqs: reqs,
                weight_version: 0,
            })
            .collect();
        let plan = plan_repack(&replicas, c_max, b);
        let released: Vec<usize> = plan.released();
        // No destination is itself released.
        for &(src, dst) in &plan.moves {
            prop_assert_ne!(src, dst);
            prop_assert!(!released.contains(&dst));
        }
        // Each source released at most once.
        let mut sorted = released.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), released.len());
        // Projected destination loads stay within both bounds.
        for dst in plan.moves.iter().map(|&(_, d)| d) {
            let base = &replicas[dst];
            let extra_kv: f64 = plan
                .moves
                .iter()
                .filter(|&&(_, d)| d == dst)
                .map(|&(s, _)| replicas[s].kv_used)
                .sum();
            let extra_reqs: usize = plan
                .moves
                .iter()
                .filter(|&&(_, d)| d == dst)
                .map(|&(s, _)| replicas[s].n_reqs)
                .sum();
            prop_assert!(base.kv_used + extra_kv <= c_max + 1e-9);
            prop_assert!(base.n_reqs + extra_reqs <= b);
        }
    }

    /// The replica engine conserves trajectories and tokens: everything
    /// submitted completes exactly once with exactly the spec's tokens.
    #[test]
    fn engine_conserves_trajectories_and_tokens(
        lens in proptest::collection::vec(64u64..3000, 1..24),
        prompt in 16u64..512,
    ) {
        let decode = DecodeModel::new(ModelSpec::qwen_7b(), GpuSpec::h800(), 1);
        let mut e = ReplicaEngine::new(0, decode, EngineConfig::default());
        let mut expected_tokens = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            expected_tokens += len + prompt;
            e.submit(
                TrajectorySpec {
                    id: i as u64,
                    prompt_id: i as u64,
                    group_index: 0,
                    prompt_tokens: prompt,
                    segments: vec![Segment::Decode { tokens: len }],
                },
                Time::ZERO,
            );
        }
        let mut guard = 0;
        while let Some(t) = e.next_event_time() {
            e.advance_to(t);
            guard += 1;
            prop_assert!(guard < 1_000_000);
        }
        prop_assert!(e.is_idle());
        let done = e.take_completions();
        prop_assert_eq!(done.len(), lens.len());
        let total: u64 = done.iter().map(|c| c.spec.total_tokens()).sum();
        prop_assert_eq!(total, expected_tokens);
        // Completion order respects length order for same-start trajectories.
        let mut ids: Vec<u64> = done.iter().map(|c| c.spec.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..lens.len() as u64).collect::<Vec<_>>());
    }

    /// Workload generation is a pure function of (seed, id) and respects
    /// the configured caps.
    #[test]
    fn workload_specs_deterministic_and_capped(seed in 0u64..1000, id in 0u64..5000) {
        let w = WorkloadGenerator::single_turn(seed, Checkpoint::Math7B);
        let a = w.trajectory(id, id / 16, (id % 16) as usize, 1.0);
        let b = w.trajectory(id, id / 16, (id % 16) as usize, 1.0);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.prompt_tokens >= 1 && a.prompt_tokens <= 2048);
        prop_assert!(a.decode_tokens() >= 1 && a.decode_tokens() <= 16_384);
    }

    /// Multi-turn specs alternate decode/env and respect the call cap.
    #[test]
    fn multi_turn_specs_alternate(seed in 0u64..200, id in 0u64..500) {
        let w = WorkloadGenerator::multi_turn(seed);
        let t = w.trajectory(id, id / 16, (id % 16) as usize, 1.0);
        prop_assert!(t.env_calls() >= 1 && t.env_calls() <= 8);
        let starts_decode = matches!(t.segments.first(), Some(Segment::Decode { .. }));
        let ends_decode = matches!(t.segments.last(), Some(Segment::Decode { .. }));
        prop_assert!(starts_decode, "must start with a decode segment");
        prop_assert!(ends_decode, "must end with a decode segment");
        for pair in t.segments.windows(2) {
            let ok = matches!(
                pair,
                [Segment::Decode { .. }, Segment::Env { .. }]
                    | [Segment::Env { .. }, Segment::Decode { .. }]
            );
            prop_assert!(ok, "segments must alternate");
        }
    }

    /// The experience buffer conserves items under any interleaving of
    /// writes and samples.
    #[test]
    fn buffer_conserves_experiences(
        ops in proptest::collection::vec((0usize..2, 1usize..64), 1..60)
    ) {
        use laminar::data::{Eviction, Sampler};
        use laminar::sim::SimRng;
        let mut buf = ExperienceBuffer::new(Sampler::Fifo, Eviction::None);
        let mut rng = SimRng::new(1);
        let mut written = 0u64;
        let mut sampled = 0u64;
        for (op, n) in ops {
            if op == 0 {
                for _ in 0..n {
                    buf.write(Experience {
                        trajectory_id: written,
                        prompt_id: written / 16,
                        group_index: 0,
                        prompt_tokens: 1,
                        response_tokens: 1,
                        policy_versions: vec![0],
                        started_at: Time::ZERO,
                        finished_at: Time::ZERO,
                    });
                    written += 1;
                }
            } else {
                sampled += buf.sample(n, 0, &mut rng).len() as u64;
            }
        }
        prop_assert_eq!(written, sampled + buf.len() as u64);
    }

    /// Chain-broadcast optimal time is never worse than any fixed chunking.
    #[test]
    fn optimal_chunking_dominates(p in 3usize..200, mb in 1.0f64..200.0, k in 1usize..10_000) {
        use laminar::cluster::{ChainBroadcast, LinkSpec};
        let chain = ChainBroadcast::new(LinkSpec::new("rdma", 90e9, 5e-6));
        let bytes = mb * 1e9;
        let opt = chain.optimal_broadcast_secs(p, bytes);
        prop_assert!(opt <= chain.broadcast_secs(p, bytes, k) + 1e-9);
    }
}
