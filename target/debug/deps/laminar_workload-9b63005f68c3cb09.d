/root/repo/target/debug/deps/laminar_workload-9b63005f68c3cb09.d: crates/workload/src/lib.rs crates/workload/src/dataset.rs crates/workload/src/dist.rs crates/workload/src/env.rs crates/workload/src/lengths.rs crates/workload/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/liblaminar_workload-9b63005f68c3cb09.rmeta: crates/workload/src/lib.rs crates/workload/src/dataset.rs crates/workload/src/dist.rs crates/workload/src/env.rs crates/workload/src/lengths.rs crates/workload/src/spec.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dataset.rs:
crates/workload/src/dist.rs:
crates/workload/src/env.rs:
crates/workload/src/lengths.rs:
crates/workload/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
