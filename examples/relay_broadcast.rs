//! The relay weight-synchronization path in isolation: the Appendix D
//! analytic model (optimal chunking, near-constant scaling) next to the
//! real threaded implementation (pipelining measured on actual threads).
//!
//! ```text
//! cargo run --release --example relay_broadcast
//! ```

use laminar::cluster::{ChainBroadcast, MachineSpec, ModelSpec};
use laminar::prelude::*;
use std::time::Instant;

fn main() {
    analytic_model();
    threaded_pipelining();
    shard_pull();
}

fn analytic_model() {
    println!("== Appendix D model: broadcast time vs chain length ==");
    let machine = MachineSpec::h800_server();
    let chain = ChainBroadcast::new(machine.rdma.clone());
    for model in ModelSpec::paper_models() {
        let bytes = model.weight_bytes();
        print!("{:<14}", model.name);
        for p in [2usize, 8, 32, 128] {
            print!(
                "  p={p:<3} {:>6.3}s",
                chain.optimal_broadcast_secs(p, bytes)
            );
        }
        println!();
    }
    let k = chain.optimal_chunks(128, ModelSpec::qwen_72b().weight_bytes());
    println!("optimal chunk count k* for 72B at 128 nodes: {k}\n");
}

fn threaded_pipelining() {
    println!("== threaded tier: pipelined vs store-and-forward (8 MiB, 100 MB/s hops) ==");
    let size = 8usize << 20;
    for (label, chunk) in [
        ("pipelined (32 chunks)", size / 32),
        ("store-and-forward", size),
    ] {
        let mut tier = RelayTier::new(RelayTierConfig {
            chunk_bytes: chunk,
            hop_seconds_per_byte: 1e-8,
            hop_startup: 0.0,
            ..RelayTierConfig::fast(6)
        });
        let start = Instant::now();
        tier.publish(1, laminar::relay::Bytes::from(vec![0u8; size]));
        assert!(tier.wait_converged(1, std::time::Duration::from_secs(60)));
        println!("  {label:<24} {:>8.3}s", start.elapsed().as_secs_f64());
        tier.shutdown();
    }
    println!();
}

fn shard_pull() {
    println!("== rollout-side TP shard pull ==");
    let mut tier = RelayTier::new(RelayTierConfig::fast(4));
    let weights = laminar::relay::Bytes::from(
        (0..1_000_000u32)
            .flat_map(u32::to_le_bytes)
            .collect::<Vec<u8>>(),
    );
    tier.publish(3, weights.clone());
    assert!(tier.wait_converged(3, std::time::Duration::from_secs(10)));
    // A TP=4 replica colocated with relay 2 pulls its four shards.
    let mut rebuilt = Vec::new();
    for rank in 0..4 {
        let (version, shard) = tier.pull_shard(2, rank, 4).expect("weights resident");
        println!("  rank {rank}: version {version}, {} bytes", shard.len());
        rebuilt.extend_from_slice(&shard);
    }
    assert_eq!(laminar::relay::Bytes::from(rebuilt), weights);
    println!("  shards reassemble to the exact published weights");
    tier.shutdown();
}
