//! Composable probability distributions for workload modelling.

use laminar_sim::SimRng;

/// A sampleable distribution over non-negative reals.
///
/// The variants cover the shapes the paper's workloads exhibit: log-normal
/// bodies with Pareto tails for trajectory lengths, and mixtures for bimodal
/// environment latencies.
#[derive(Debug, Clone)]
pub enum Dist {
    /// Always `value`.
    Constant {
        /// The constant.
        value: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Log-normal with the given parameters of the underlying normal.
    LogNormal {
        /// Mean of `ln X`.
        mu: f64,
        /// Standard deviation of `ln X`.
        sigma: f64,
    },
    /// Pareto with minimum `scale` and tail index `shape` (heavier tail for
    /// smaller `shape`).
    Pareto {
        /// Minimum value.
        scale: f64,
        /// Tail index; must be positive.
        shape: f64,
    },
    /// Exponential with the given rate.
    Exponential {
        /// Rate parameter (1/mean).
        rate: f64,
    },
    /// Weighted mixture of components.
    Mixture {
        /// `(weight, component)` pairs; weights need not be normalized.
        components: Vec<(f64, Dist)>,
    },
    /// A distribution clamped into `[lo, hi]`.
    Clamped {
        /// Inner distribution.
        inner: Box<Dist>,
        /// Lower clamp.
        lo: f64,
        /// Upper clamp.
        hi: f64,
    },
    /// A distribution scaled by a constant factor.
    Scaled {
        /// Inner distribution.
        inner: Box<Dist>,
        /// Multiplicative factor.
        factor: f64,
    },
}

impl Dist {
    /// A log-normal parameterized by its median and the ratio `p99/median`
    /// — the natural parameterization for "the 99th percentile is N× the
    /// median" statements in §2.2.
    pub fn lognormal_median_p99(median: f64, p99_over_median: f64) -> Dist {
        assert!(
            median > 0.0 && p99_over_median > 1.0,
            "invalid log-normal shape"
        );
        // For log-normal, p99/median = exp(z99 * sigma) with z99 = 2.3263.
        let sigma = p99_over_median.ln() / 2.326_347_874_040_841;
        Dist::LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Clamps this distribution into `[lo, hi]`.
    pub fn clamped(self, lo: f64, hi: f64) -> Dist {
        Dist::Clamped {
            inner: Box::new(self),
            lo,
            hi,
        }
    }

    /// Scales this distribution by `factor`.
    pub fn scaled(self, factor: f64) -> Dist {
        Dist::Scaled {
            inner: Box::new(self),
            factor,
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Dist::Constant { value } => *value,
            Dist::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Dist::LogNormal { mu, sigma } => (mu + sigma * rng.standard_normal()).exp(),
            Dist::Pareto { scale, shape } => {
                let u = 1.0 - rng.f64(); // (0, 1]
                scale / u.powf(1.0 / shape)
            }
            Dist::Exponential { rate } => {
                let u = 1.0 - rng.f64();
                -u.ln() / rate
            }
            Dist::Mixture { components } => {
                let weights: Vec<f64> = components.iter().map(|(w, _)| *w).collect();
                match rng.weighted_index(&weights) {
                    Some(i) => components[i].1.sample(rng),
                    None => 0.0,
                }
            }
            Dist::Clamped { inner, lo, hi } => inner.sample(rng).clamp(*lo, *hi),
            Dist::Scaled { inner, factor } => inner.sample(rng) * factor,
        }
    }

    /// Analytic mean where a closed form exists, otherwise `None`.
    pub fn mean(&self) -> Option<f64> {
        match self {
            Dist::Constant { value } => Some(*value),
            Dist::Uniform { lo, hi } => Some(0.5 * (lo + hi)),
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            Dist::Pareto { scale, shape } => {
                if *shape > 1.0 {
                    Some(shape * scale / (shape - 1.0))
                } else {
                    None
                }
            }
            Dist::Exponential { rate } => Some(1.0 / rate),
            Dist::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                if total <= 0.0 {
                    return Some(0.0);
                }
                let mut acc = 0.0;
                for (w, d) in components {
                    acc += w / total * d.mean()?;
                }
                Some(acc)
            }
            Dist::Clamped { .. } => None,
            Dist::Scaled { inner, factor } => inner.mean().map(|m| m * factor),
        }
    }

    /// Analytic quantile where a closed form exists, otherwise `None`.
    /// `q` in `(0, 1)`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self {
            Dist::Constant { value } => Some(*value),
            Dist::Uniform { lo, hi } => Some(lo + q * (hi - lo)),
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * normal_quantile(q)).exp()),
            Dist::Pareto { scale, shape } => Some(scale / (1.0 - q).powf(1.0 / shape)),
            Dist::Exponential { rate } => Some(-(1.0 - q).ln() / rate),
            Dist::Mixture { .. } => None,
            Dist::Clamped { inner, lo, hi } => inner.quantile(q).map(|x| x.clamp(*lo, *hi)),
            Dist::Scaled { inner, factor } => inner.quantile(q).map(|x| x * factor),
        }
    }
}

/// Standard normal quantile (inverse CDF), Acklam's rational approximation
/// (relative error below 1.2e-9 — far tighter than the workload models need).
pub fn normal_quantile(q: f64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "quantile probability must be in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if q < p_low {
        let u = (-2.0 * q.ln()).sqrt();
        (((((C[0] * u + C[1]) * u + C[2]) * u + C[3]) * u + C[4]) * u + C[5])
            / ((((D[0] * u + D[1]) * u + D[2]) * u + D[3]) * u + 1.0)
    } else if q <= 1.0 - p_low {
        let u = q - 0.5;
        let r = u * u;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * u
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_sim::Histogram;

    fn sample_hist(d: &Dist, n: usize, seed: u64) -> Histogram {
        let mut rng = SimRng::new(seed);
        let mut h = Histogram::new();
        for _ in 0..n {
            h.add(d.sample(&mut rng));
        }
        h
    }

    #[test]
    fn normal_quantile_known_points() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.99) - 2.326_348).abs() < 1e-4);
        assert!((normal_quantile(0.01) + 2.326_348).abs() < 1e-4);
    }

    #[test]
    fn lognormal_median_p99_hits_targets() {
        let d = Dist::lognormal_median_p99(3000.0, 10.0);
        assert!((d.quantile(0.5).unwrap() - 3000.0).abs() < 1.0);
        assert!((d.quantile(0.99).unwrap() - 30_000.0).abs() < 50.0);
        // Empirical check.
        let mut h = sample_hist(&d, 40_000, 42);
        let med = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((med - 3000.0).abs() / 3000.0 < 0.05, "median {med}");
        assert!((p99 / med - 10.0).abs() < 1.5, "p99/median {}", p99 / med);
    }

    #[test]
    fn pareto_tail_is_heavy() {
        let d = Dist::Pareto {
            scale: 1.0,
            shape: 1.5,
        };
        let mut h = sample_hist(&d, 50_000, 7);
        assert!(h.min() >= 1.0);
        assert!(h.percentile(99.9) > 50.0);
        assert!((d.mean().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_infinite_mean_is_none() {
        assert!(Dist::Pareto {
            scale: 1.0,
            shape: 0.9
        }
        .mean()
        .is_none());
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::Exponential { rate: 0.5 };
        let h = sample_hist(&d, 30_000, 9);
        assert!((h.mean() - 2.0).abs() < 0.1);
        assert_eq!(d.mean(), Some(2.0));
    }

    #[test]
    fn mixture_weights_respected() {
        let d = Dist::Mixture {
            components: vec![
                (3.0, Dist::Constant { value: 1.0 }),
                (1.0, Dist::Constant { value: 5.0 }),
            ],
        };
        let h = sample_hist(&d, 20_000, 3);
        // Mean = 0.75*1 + 0.25*5 = 2.0.
        assert!((h.mean() - 2.0).abs() < 0.1);
        assert_eq!(d.mean(), Some(2.0));
    }

    #[test]
    fn clamp_and_scale() {
        let d = Dist::Constant { value: 100.0 }.clamped(0.0, 10.0);
        let mut rng = SimRng::new(1);
        assert_eq!(d.sample(&mut rng), 10.0);
        let s = Dist::Constant { value: 2.0 }.scaled(3.0);
        assert_eq!(s.sample(&mut rng), 6.0);
        assert_eq!(s.mean(), Some(6.0));
        assert_eq!(s.quantile(0.5), Some(6.0));
    }

    #[test]
    fn uniform_bounds() {
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let mut rng = SimRng::new(13);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert_eq!(d.quantile(0.5), Some(3.0));
    }
}
