/root/repo/target/debug/deps/laminar_rollout-e9d649c0f27919d7.d: crates/rollout/src/lib.rs crates/rollout/src/engine/mod.rs crates/rollout/src/engine/lifecycle.rs crates/rollout/src/engine/stepper.rs crates/rollout/src/manager.rs crates/rollout/src/repack.rs crates/rollout/src/traj.rs

/root/repo/target/debug/deps/liblaminar_rollout-e9d649c0f27919d7.rlib: crates/rollout/src/lib.rs crates/rollout/src/engine/mod.rs crates/rollout/src/engine/lifecycle.rs crates/rollout/src/engine/stepper.rs crates/rollout/src/manager.rs crates/rollout/src/repack.rs crates/rollout/src/traj.rs

/root/repo/target/debug/deps/liblaminar_rollout-e9d649c0f27919d7.rmeta: crates/rollout/src/lib.rs crates/rollout/src/engine/mod.rs crates/rollout/src/engine/lifecycle.rs crates/rollout/src/engine/stepper.rs crates/rollout/src/manager.rs crates/rollout/src/repack.rs crates/rollout/src/traj.rs

crates/rollout/src/lib.rs:
crates/rollout/src/engine/mod.rs:
crates/rollout/src/engine/lifecycle.rs:
crates/rollout/src/engine/stepper.rs:
crates/rollout/src/manager.rs:
crates/rollout/src/repack.rs:
crates/rollout/src/traj.rs:
