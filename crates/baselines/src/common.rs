//! Shared system configuration, batch-generation helper, and report format.

use laminar_cluster::{
    CollectiveModel, DecodeModel, GpuSpec, MachineSpec, ModelSpec, ReshardModel, TrainModel,
};
use laminar_rollout::{CompletedTraj, EngineConfig, ReplicaEngine};
use laminar_sim::{Duration, Histogram, Time, TimeSeries};
use laminar_workload::{Dataset, TrajectorySpec, WorkloadGenerator};
use serde::{Deserialize, Serialize};

/// Everything a system needs to run one experiment configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Model being trained/served.
    pub model: ModelSpec,
    /// Machine hardware.
    pub machine: MachineSpec,
    /// GPUs allocated to the trainer (ignored by colocated verl).
    pub train_gpus: usize,
    /// GPUs allocated to rollouts (for verl: all GPUs, time-shared).
    pub rollout_gpus: usize,
    /// Tensor-parallel degree per rollout replica.
    pub rollout_tp: usize,
    /// Maximum concurrent trajectories per replica.
    pub max_concurrency: usize,
    /// Prompts per global batch (512).
    pub prompts_per_batch: usize,
    /// Responses per prompt (16) — global batch = prompts × group.
    pub group_size: usize,
    /// Mini-batch updates per RL iteration (16).
    pub minibatches: usize,
    /// Response lengths evolve as the model learns (§2.3): the median
    /// length is scaled by `1 + evolution_rate × batch index`. The default
    /// 0.002 is a mild drift; the evolution ablation raises it.
    pub evolution_rate: f64,
    /// Fraction of GPU memory the serving engine may use for weights +
    /// KVCache. Disaggregated systems get the full 0.9; colocated verl
    /// keeps training state resident and serves with ~0.45 (the HybridEngine
    /// memory pressure of §2.4).
    pub kv_memory_utilization: f64,
    /// Workload generator (identical across systems for a given seed).
    pub workload: WorkloadGenerator,
    /// Measured RL iterations (after warmup).
    pub iterations: usize,
    /// Warmup RL iterations excluded from the throughput metric.
    pub warmup: usize,
    /// Root seed.
    pub seed: u64,
}

impl SystemConfig {
    /// A paper-shaped configuration on H800 hardware. `train_gpus = 0` is
    /// allowed only for colocated verl.
    pub fn new(
        model: ModelSpec,
        train_gpus: usize,
        rollout_gpus: usize,
        rollout_tp: usize,
        workload: WorkloadGenerator,
    ) -> Self {
        assert!(rollout_gpus >= rollout_tp && rollout_gpus % rollout_tp == 0);
        SystemConfig {
            model,
            machine: MachineSpec::h800_server(),
            train_gpus,
            rollout_gpus,
            rollout_tp,
            max_concurrency: 1024,
            prompts_per_batch: 512,
            group_size: 16,
            minibatches: 16,
            evolution_rate: 0.002,
            kv_memory_utilization: 0.9,
            workload,
            iterations: 4,
            warmup: 2,
            seed: 0,
        }
    }

    /// A heavily shrunk configuration for fast tests: small batch, short
    /// runs.
    pub fn small_test(workload: WorkloadGenerator) -> Self {
        let mut cfg = SystemConfig::new(ModelSpec::qwen_7b(), 8, 8, 1, workload);
        cfg.prompts_per_batch = 16;
        cfg.group_size = 4;
        cfg.minibatches = 4;
        cfg.iterations = 2;
        cfg.warmup = 1;
        cfg
    }

    /// Total GPUs of the configuration (`train_gpus == 0` means colocated:
    /// training time-shares the rollout GPUs).
    pub fn total_gpus(&self) -> usize {
        if self.train_gpus == 0 {
            self.rollout_gpus
        } else {
            self.train_gpus + self.rollout_gpus
        }
    }

    /// Rollout replica count.
    pub fn replicas(&self) -> usize {
        self.rollout_gpus / self.rollout_tp
    }

    /// Trajectories per global batch.
    pub fn global_batch(&self) -> usize {
        self.prompts_per_batch * self.group_size
    }

    /// GPU type in use.
    pub fn gpu(&self) -> GpuSpec {
        self.machine.gpu.clone()
    }

    /// Decode model for one replica.
    pub fn decode_model(&self) -> DecodeModel {
        let mut m = DecodeModel::new(self.model.clone(), self.gpu(), self.rollout_tp);
        m.memory_utilization = self.kv_memory_utilization;
        m
    }

    /// Training model. For colocated verl pass the full GPU count
    /// explicitly via `train_model_on`.
    pub fn train_model(&self) -> TrainModel {
        TrainModel::new(self.model.clone(), self.gpu(), self.train_gpus.max(1))
    }

    /// Training model over an explicit GPU count (colocated mode).
    pub fn train_model_on(&self, gpus: usize) -> TrainModel {
        TrainModel::new(self.model.clone(), self.gpu(), gpus.max(1))
    }

    /// NCCL / relay transfer models.
    pub fn collective(&self) -> CollectiveModel {
        CollectiveModel::new(self.machine.clone())
    }

    /// HybridEngine reshard model.
    pub fn reshard(&self) -> ReshardModel {
        ReshardModel::new(self.machine.clone())
    }

    /// Engine configuration per replica.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig { max_concurrency: self.max_concurrency, ..EngineConfig::default() }
    }

    /// A fresh dataset for this configuration.
    pub fn dataset(&self) -> Dataset {
        Dataset::new(17_000, self.group_size)
    }

    /// Total iterations simulated (warmup + measured).
    pub fn total_iterations(&self) -> usize {
        self.warmup + self.iterations
    }
}

/// Result of generating one global batch on a set of standalone replicas.
#[derive(Debug, Clone)]
pub struct BatchGenStats {
    /// Time from batch start until the last trajectory completes.
    pub duration: Duration,
    /// Per-trajectory completion offsets from batch start, sorted ascending.
    pub completion_offsets: Vec<Duration>,
    /// `(completion offset, prompt+response tokens)` per trajectory, sorted
    /// by offset — what a streaming trainer consumes in order.
    pub completion_tokens: Vec<(Duration, f64)>,
    /// Total prompt+response tokens in the batch.
    pub total_tokens: f64,
    /// Mean of per-replica time-weighted KVCache utilization.
    pub mean_kv_utilization: f64,
    /// Per-trajectory generation latencies (start→finish), seconds.
    pub latencies: Vec<f64>,
}

/// Runs one global batch to completion on `replicas` standalone replica
/// engines (round-robin assignment) — the generation stage of every
/// barrier-synchronized system, where replicas do not interact.
pub fn generate_batch(cfg: &SystemConfig, specs: &[TrajectorySpec], replicas: usize) -> BatchGenStats {
    assert!(replicas >= 1, "need at least one replica");
    let mut engines: Vec<ReplicaEngine> = (0..replicas)
        .map(|i| ReplicaEngine::new(i, cfg.decode_model(), cfg.engine_config()))
        .collect();
    for (i, spec) in specs.iter().enumerate() {
        engines[i % replicas].submit(spec.clone(), Time::ZERO);
    }
    let mut completion_tokens: Vec<(Duration, f64)> = Vec::with_capacity(specs.len());
    let mut latencies = Vec::with_capacity(specs.len());
    let mut total_tokens = 0.0;
    let mut kv_sum = 0.0;
    let mut end = Time::ZERO;
    for e in &mut engines {
        let mut guard = 0u32;
        while let Some(t) = e.next_event_time() {
            e.advance_to(t);
            guard += 1;
            assert!(guard < 10_000_000, "standalone replica did not quiesce");
        }
        assert!(e.is_idle(), "replica left work unfinished");
        for c in e.take_completions() {
            let tokens = c.spec.total_tokens() as f64;
            completion_tokens.push((c.finished_at.since(Time::ZERO), tokens));
            latencies.push(c.finished_at.since(c.started_at).as_secs_f64());
            total_tokens += tokens;
            end = end.max(c.finished_at);
        }
        kv_sum += e.mean_kv_utilization();
    }
    completion_tokens.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    BatchGenStats {
        duration: end.since(Time::ZERO),
        completion_offsets: completion_tokens.iter().map(|&(t, _)| t).collect(),
        completion_tokens,
        total_tokens,
        mean_kv_utilization: kv_sum / replicas as f64,
        latencies,
    }
}

/// Per-trajectory record of what the trainer consumed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsumedTraj {
    /// Staleness at consumption (actor version − behaviour version).
    pub staleness: u64,
    /// Whether several policy versions generated it.
    pub mixed_version: bool,
}

/// The uniform result format every system produces.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// System name.
    pub system: String,
    /// Per measured iteration: wall-clock duration, seconds.
    pub iteration_secs: Vec<f64>,
    /// Per measured iteration: prompt+response tokens trained on.
    pub iteration_tokens: Vec<f64>,
    /// Throughput over the measured window, tokens/second (the paper's
    /// headline metric).
    pub throughput: f64,
    /// Fraction of iteration time the system was generation-bound.
    pub generation_fraction: f64,
    /// Staleness / version mixing of every consumed trajectory.
    pub consumed: Vec<ConsumedTraj>,
    /// Mean KVCache utilization across replicas.
    pub mean_kv_utilization: f64,
    /// Rollout weight-update waiting times, seconds (Figure 14).
    pub rollout_waits: Vec<f64>,
    /// Per-trajectory generation latencies, seconds.
    pub latencies: Vec<f64>,
    /// Generation throughput timeline (tokens/s per window).
    pub gen_series: TimeSeries,
    /// Training throughput timeline (tokens/s per window).
    pub train_series: TimeSeries,
    /// Repack events executed (Laminar only).
    pub repack_events: u64,
    /// Replicas released by repacks (Laminar only).
    pub repack_released: u64,
    /// Total repack overhead, seconds (Laminar only).
    pub repack_overhead_secs: f64,
    /// Per-trajectory inherent staleness paired with finish offset within
    /// its generation window, for Figure 10.
    pub staleness_by_finish: Vec<(f64, u64)>,
}

impl RunReport {
    /// Computes the throughput metric from the recorded iterations.
    pub fn finalize(&mut self) {
        let time: f64 = self.iteration_secs.iter().sum();
        let tokens: f64 = self.iteration_tokens.iter().sum();
        self.throughput = if time > 0.0 { tokens / time } else { 0.0 };
    }

    /// Staleness histogram of consumed trajectories.
    pub fn staleness_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        h.extend(self.consumed.iter().map(|c| c.staleness as f64));
        h
    }

    /// Maximum observed staleness.
    pub fn max_staleness(&self) -> u64 {
        self.consumed.iter().map(|c| c.staleness).max().unwrap_or(0)
    }

    /// Fraction of consumed trajectories that were mixed-version.
    pub fn mixed_version_fraction(&self) -> f64 {
        if self.consumed.is_empty() {
            return 0.0;
        }
        self.consumed.iter().filter(|c| c.mixed_version).count() as f64
            / self.consumed.len() as f64
    }
}

/// A runnable RL post-training system.
pub trait RlSystem {
    /// System name for reports.
    fn name(&self) -> &'static str;
    /// Runs the configuration to completion and reports.
    fn run(&self, cfg: &SystemConfig) -> RunReport;
}

/// Converts a [`CompletedTraj`] into a consumption record at an actor
/// version.
pub fn consumed_at(c: &CompletedTraj, actor_version: u64) -> ConsumedTraj {
    let behavior = *c.policy_versions.first().expect("versions never empty");
    ConsumedTraj {
        staleness: actor_version.saturating_sub(behavior),
        mixed_version: c.policy_versions.windows(2).any(|w| w[0] != w[1]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_workload::Checkpoint;

    fn small() -> SystemConfig {
        SystemConfig::small_test(WorkloadGenerator::single_turn(1, Checkpoint::Math7B))
    }

    #[test]
    fn config_shape() {
        let cfg = small();
        assert_eq!(cfg.global_batch(), 64);
        assert_eq!(cfg.replicas(), 8);
        assert_eq!(cfg.total_iterations(), 3);
    }

    #[test]
    fn generate_batch_accounts_every_trajectory() {
        let cfg = small();
        let mut ds = cfg.dataset();
        let batch = ds.next_batch(cfg.prompts_per_batch);
        let specs = cfg.workload.batch(&batch, 1.0);
        let stats = generate_batch(&cfg, &specs, cfg.replicas());
        assert_eq!(stats.completion_offsets.len(), 64);
        assert_eq!(stats.latencies.len(), 64);
        let expect: f64 = specs.iter().map(|s| s.total_tokens() as f64).sum();
        assert_eq!(stats.total_tokens, expect);
        assert!(stats.duration > Duration::ZERO);
        // Sorted offsets; last equals batch duration.
        assert_eq!(*stats.completion_offsets.last().unwrap(), stats.duration);
        assert!(stats.mean_kv_utilization > 0.0 && stats.mean_kv_utilization <= 1.0);
    }

    #[test]
    fn more_replicas_generate_faster() {
        let cfg = small();
        let mut ds = cfg.dataset();
        let specs = cfg.workload.batch(&ds.next_batch(cfg.prompts_per_batch), 1.0);
        let slow = generate_batch(&cfg, &specs, 2);
        let fast = generate_batch(&cfg, &specs, 8);
        assert!(fast.duration < slow.duration);
    }

    #[test]
    fn report_finalize_and_staleness() {
        let mut r = RunReport {
            iteration_secs: vec![10.0, 10.0],
            iteration_tokens: vec![1000.0, 3000.0],
            consumed: vec![
                ConsumedTraj { staleness: 0, mixed_version: false },
                ConsumedTraj { staleness: 3, mixed_version: true },
            ],
            ..RunReport::default()
        };
        r.finalize();
        assert_eq!(r.throughput, 200.0);
        assert_eq!(r.max_staleness(), 3);
        assert_eq!(r.mixed_version_fraction(), 0.5);
    }
}
