//! `ReasonTree`: a synthetic hierarchical reasoning environment.
//!
//! A problem has a *type* `t` and a *depth* `d`. Solving it requires `d`
//! sequential reasoning steps; at step `l` the policy must pick the correct
//! branch out of `A` alternatives, where the correct branch is a fixed
//! hidden function of `(t, l)` the policy has to learn. Reward is 1 iff
//! every step is correct (a rule-based verifier, like the paper's math
//! checker), 0 otherwise.
//!
//! Depth is sampled from a heavy-tailed distribution, so trajectory
//! *lengths* are heterogeneous exactly like the paper's math workloads —
//! which is what couples this learner to the systems under test: each step
//! costs `tokens_per_step` decode tokens, so deep problems are the long-tail
//! trajectories.

use laminar_sim::SimRng;

/// The environment definition (shared by all policies and systems).
#[derive(Debug, Clone)]
pub struct ReasonEnv {
    /// Number of problem types.
    pub types: usize,
    /// Branching factor (action count).
    pub actions: usize,
    /// Maximum problem depth.
    pub max_depth: usize,
    /// Decode tokens consumed per reasoning step (couples episodes to
    /// trajectory lengths).
    pub tokens_per_step: u64,
    /// Hidden correct-action table, `types × max_depth`.
    correct: Vec<usize>,
}

/// One sampled problem (a "prompt").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Problem {
    /// Problem type.
    pub ptype: usize,
    /// Required reasoning depth.
    pub depth: usize,
}

impl ReasonEnv {
    /// Builds an environment with a hidden answer table drawn from `seed`.
    pub fn new(types: usize, actions: usize, max_depth: usize, seed: u64) -> Self {
        assert!(
            types > 0 && actions > 1 && max_depth > 0,
            "degenerate environment"
        );
        let mut rng = SimRng::derive(seed, "reason-env", 0);
        let correct = (0..types * max_depth).map(|_| rng.index(actions)).collect();
        ReasonEnv {
            types,
            actions,
            max_depth,
            tokens_per_step: 512,
            correct,
        }
    }

    /// A small default environment used across experiments and tests.
    pub fn standard(seed: u64) -> Self {
        ReasonEnv::new(12, 4, 10, seed)
    }

    /// Number of distinct policy states: one per `(type, level)` pair.
    pub fn num_states(&self) -> usize {
        self.types * self.max_depth
    }

    /// State index for `(type, level)`.
    pub fn state(&self, ptype: usize, level: usize) -> usize {
        debug_assert!(ptype < self.types && level < self.max_depth);
        ptype * self.max_depth + level
    }

    /// The hidden correct action (only the verifier consults this).
    pub fn correct_action(&self, ptype: usize, level: usize) -> usize {
        self.correct[self.state(ptype, level)]
    }

    /// Samples a problem: uniform type, heavy-tailed depth (geometric
    /// truncated at `max_depth`, so most problems are shallow and a few are
    /// deep — the long tail).
    pub fn sample_problem(&self, rng: &mut SimRng) -> Problem {
        let ptype = rng.index(self.types);
        let mut depth = 1;
        while depth < self.max_depth && rng.chance(0.55) {
            depth += 1;
        }
        Problem { ptype, depth }
    }

    /// Deterministic problem for a prompt id (all systems see the same
    /// prompt sequence).
    pub fn problem_for_prompt(&self, seed: u64, prompt_id: u64) -> Problem {
        let mut rng = SimRng::derive(seed, "reason-problem", prompt_id);
        self.sample_problem(&mut rng)
    }

    /// Verifier: 1.0 iff the action sequence solves the problem.
    pub fn reward(&self, problem: Problem, actions: &[usize]) -> f64 {
        if actions.len() != problem.depth {
            return 0.0;
        }
        for (level, &a) in actions.iter().enumerate() {
            if a != self.correct_action(problem.ptype, level) {
                return 0.0;
            }
        }
        1.0
    }

    /// Decode tokens an episode of this problem consumes.
    pub fn episode_tokens(&self, problem: Problem) -> u64 {
        problem.depth as u64 * self.tokens_per_step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reward_requires_full_correct_path() {
        let env = ReasonEnv::standard(3);
        let p = Problem { ptype: 2, depth: 3 };
        let good: Vec<usize> = (0..3).map(|l| env.correct_action(2, l)).collect();
        assert_eq!(env.reward(p, &good), 1.0);
        let mut bad = good.clone();
        bad[1] = (bad[1] + 1) % env.actions;
        assert_eq!(env.reward(p, &bad), 0.0);
        assert_eq!(env.reward(p, &good[..2]), 0.0, "wrong length fails");
    }

    #[test]
    fn depth_distribution_is_heavy_tailed() {
        let env = ReasonEnv::standard(1);
        let mut rng = SimRng::new(9);
        let mut counts = vec![0usize; env.max_depth + 1];
        for _ in 0..20_000 {
            counts[env.sample_problem(&mut rng).depth] += 1;
        }
        assert!(counts[1] > counts[3], "shallow problems dominate");
        assert!(counts[env.max_depth] > 0, "deep tail exists");
        let deep: usize = counts[7..].iter().sum();
        let frac = deep as f64 / 20_000.0;
        assert!(frac > 0.005 && frac < 0.2, "tail fraction {frac}");
    }

    #[test]
    fn problems_deterministic_per_prompt() {
        let env = ReasonEnv::standard(5);
        assert_eq!(env.problem_for_prompt(1, 42), env.problem_for_prompt(1, 42));
        // Different prompts usually differ.
        let distinct = (0..50)
            .map(|i| env.problem_for_prompt(1, i))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(distinct > 10);
    }

    #[test]
    fn same_seed_same_hidden_table() {
        let a = ReasonEnv::standard(7);
        let b = ReasonEnv::standard(7);
        for t in 0..a.types {
            for l in 0..a.max_depth {
                assert_eq!(a.correct_action(t, l), b.correct_action(t, l));
            }
        }
    }

    #[test]
    fn episode_tokens_scale_with_depth() {
        let env = ReasonEnv::standard(1);
        let shallow = env.episode_tokens(Problem { ptype: 0, depth: 1 });
        let deep = env.episode_tokens(Problem {
            ptype: 0,
            depth: 10,
        });
        assert_eq!(deep, shallow * 10);
    }
}
