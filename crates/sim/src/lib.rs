//! Deterministic discrete-event simulation engine for the Laminar reproduction.
//!
//! The simulator is the substrate on which every throughput experiment in the
//! paper is reproduced. Virtual time is tracked in integer nanoseconds so that
//! event ordering is exact and runs are bit-for-bit reproducible: two events
//! scheduled for the same instant are delivered in the order they were
//! scheduled (a monotonically increasing sequence number breaks ties).
//!
//! The engine is deliberately minimal: a [`Scheduler`] owns the pending event
//! queue and the clock, and a user-supplied *world* implementing [`SimWorld`]
//! owns all component state. Event handlers may schedule further events
//! through the scheduler handed to them. This "world owns everything" shape
//! avoids shared mutable component graphs, which keeps the borrow checker out
//! of the way while preserving determinism.
//!
//! # Examples
//!
//! ```
//! use laminar_sim::{Duration, Scheduler, SimWorld, Simulation, Time};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl SimWorld for Counter {
//!     type Event = ();
//!     fn handle(&mut self, _now: Time, _ev: (), sched: &mut Scheduler<()>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             sched.after(Duration::from_secs(1), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.scheduler.at(Time::ZERO, ());
//! sim.run_to_completion();
//! assert_eq!(sim.world.fired, 3);
//! assert_eq!(sim.scheduler.now(), Time::from_secs(2));
//! ```

pub mod engine;
pub mod policy;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Scheduler, SimWorld, Simulation};
pub use policy::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats, ThroughputMeter, TimeSeries, TimeWeighted};
pub use time::{Duration, Time};
pub use trace::{SpanKind, TraceSpan};
