//! Re-exports of the shared substrate from `laminar-runtime`.
//!
//! The configuration, batch-generation helper, report format, and the
//! [`RlSystem`] trait used to live here; they now sit in `laminar-runtime`
//! so `laminar-core` no longer has to depend on the baselines it is
//! compared against. This module keeps the old paths working for the
//! experiment harness and downstream users.

pub use laminar_runtime::{
    consumed_at, generate_batch, generate_batch_at, generate_batch_traced, BatchGenStats,
    ConsumedTraj, NullTrace, RecordingTrace, RlSystem, RunReport, SpanKind, SystemConfig,
    TraceSink, TraceSpan,
};
