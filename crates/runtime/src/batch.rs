//! Barrier-synchronized batch generation over standalone replicas.

use crate::config::SystemConfig;
use crate::trace::TraceSink;
use laminar_rollout::ReplicaEngine;
use laminar_sim::{Duration, Time};
use laminar_workload::TrajectorySpec;

/// Result of generating one global batch on a set of standalone replicas.
#[derive(Debug, Clone)]
pub struct BatchGenStats {
    /// Time from batch start until the last trajectory completes.
    pub duration: Duration,
    /// Per-trajectory completion offsets from batch start, sorted ascending.
    pub completion_offsets: Vec<Duration>,
    /// `(completion offset, prompt+response tokens)` per trajectory, sorted
    /// by offset — what a streaming trainer consumes in order.
    pub completion_tokens: Vec<(Duration, f64)>,
    /// Total prompt+response tokens in the batch.
    pub total_tokens: f64,
    /// Mean of per-replica time-weighted KVCache utilization.
    pub mean_kv_utilization: f64,
    /// Per-trajectory generation latencies (start→finish), seconds.
    pub latencies: Vec<f64>,
}

/// Runs one global batch to completion on `replicas` standalone replica
/// engines (round-robin assignment) — the generation stage of every
/// barrier-synchronized system, where replicas do not interact.
pub fn generate_batch(
    cfg: &SystemConfig,
    specs: &[TrajectorySpec],
    replicas: usize,
) -> BatchGenStats {
    generate_batch_traced(cfg, specs, replicas, 0, &mut crate::trace::NullTrace)
}

/// [`generate_batch_traced`] for a batch that starts at virtual offset
/// `start` on the enclosing system's timeline: engine spans (recorded on the
/// batch-local clock) are translated before reaching `trace`. The barrier
/// systems run each batch on a fresh clock, so this is how their spans land
/// on one global timeline.
pub fn generate_batch_at(
    cfg: &SystemConfig,
    specs: &[TrajectorySpec],
    replicas: usize,
    start: Duration,
    version: u64,
    trace: &mut dyn TraceSink,
) -> BatchGenStats {
    if !trace.enabled() {
        return generate_batch(cfg, specs, replicas);
    }
    let mut local = crate::trace::RecordingTrace::new();
    let stats = generate_batch_traced(cfg, specs, replicas, version, &mut local);
    trace.record_all(
        local
            .take()
            .into_iter()
            .map(|s| s.shifted_by(start))
            .collect(),
    );
    stats
}

/// [`generate_batch`] with per-phase span emission: each engine serves at
/// weight `version` and records prefill / decode-segment / env-call spans
/// into `trace` when the sink is enabled.
pub fn generate_batch_traced(
    cfg: &SystemConfig,
    specs: &[TrajectorySpec],
    replicas: usize,
    version: u64,
    trace: &mut dyn TraceSink,
) -> BatchGenStats {
    assert!(replicas >= 1, "need at least one replica");
    let mut engine_cfg = cfg.engine_config();
    engine_cfg.record_trace = trace.enabled();
    let mut engines: Vec<ReplicaEngine> = (0..replicas)
        .map(|i| {
            let mut e = ReplicaEngine::new(i, cfg.decode_model(), engine_cfg.clone());
            if version != 0 {
                e.set_weight_version(version, Time::ZERO);
            }
            e
        })
        .collect();
    for (i, spec) in specs.iter().enumerate() {
        engines[i % replicas].submit(spec.clone(), Time::ZERO);
    }
    let mut completion_tokens: Vec<(Duration, f64)> = Vec::with_capacity(specs.len());
    let mut latencies = Vec::with_capacity(specs.len());
    let mut total_tokens = 0.0;
    let mut kv_sum = 0.0;
    let mut end = Time::ZERO;
    for e in &mut engines {
        let mut guard = 0u32;
        while let Some(t) = e.next_event_time() {
            e.advance_to(t);
            guard += 1;
            assert!(guard < 10_000_000, "standalone replica did not quiesce");
        }
        assert!(e.is_idle(), "replica left work unfinished");
        for c in e.take_completions() {
            let tokens = c.spec.total_tokens() as f64;
            completion_tokens.push((c.finished_at.since(Time::ZERO), tokens));
            latencies.push(c.finished_at.since(c.started_at).as_secs_f64());
            total_tokens += tokens;
            end = end.max(c.finished_at);
        }
        kv_sum += e.mean_kv_utilization();
        trace.record_all(e.take_trace_spans());
    }
    completion_tokens.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    BatchGenStats {
        duration: end.since(Time::ZERO),
        completion_offsets: completion_tokens.iter().map(|&(t, _)| t).collect(),
        completion_tokens,
        total_tokens,
        mean_kv_utilization: kv_sum / replicas as f64,
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{RecordingTrace, SpanKind};
    use laminar_workload::{Checkpoint, WorkloadGenerator};

    fn small() -> SystemConfig {
        SystemConfig::small_test(WorkloadGenerator::single_turn(1, Checkpoint::Math7B))
    }

    #[test]
    fn generate_batch_accounts_every_trajectory() {
        let cfg = small();
        let mut ds = cfg.dataset();
        let batch = ds.next_batch(cfg.prompts_per_batch);
        let specs = cfg.workload.batch(&batch, 1.0);
        let stats = generate_batch(&cfg, &specs, cfg.replicas());
        assert_eq!(stats.completion_offsets.len(), 64);
        assert_eq!(stats.latencies.len(), 64);
        let expect: f64 = specs.iter().map(|s| s.total_tokens() as f64).sum();
        assert_eq!(stats.total_tokens, expect);
        assert!(stats.duration > Duration::ZERO);
        // Sorted offsets; last equals batch duration.
        assert_eq!(*stats.completion_offsets.last().unwrap(), stats.duration);
        assert!(stats.mean_kv_utilization > 0.0 && stats.mean_kv_utilization <= 1.0);
    }

    #[test]
    fn more_replicas_generate_faster() {
        let cfg = small();
        let mut ds = cfg.dataset();
        let specs = cfg
            .workload
            .batch(&ds.next_batch(cfg.prompts_per_batch), 1.0);
        let slow = generate_batch(&cfg, &specs, 2);
        let fast = generate_batch(&cfg, &specs, 8);
        assert!(fast.duration < slow.duration);
    }

    #[test]
    fn traced_batch_emits_prefill_and_decode_spans() {
        let cfg = small();
        let mut ds = cfg.dataset();
        let specs = cfg
            .workload
            .batch(&ds.next_batch(cfg.prompts_per_batch), 1.0);
        let mut trace = RecordingTrace::new();
        let traced = generate_batch_traced(&cfg, &specs, 4, 3, &mut trace);
        // Every trajectory prefills exactly once at its first admission.
        let prefills = trace.of_kind(SpanKind::Prefill);
        assert!(prefills.len() >= specs.len());
        assert!(!trace.of_kind(SpanKind::DecodeStep).is_empty());
        for s in trace.spans() {
            assert!(s.end >= s.start);
            assert!(s.replica.is_some(), "engine spans carry a replica id");
            assert_eq!(s.version, 3, "engine spans carry the serving version");
        }
        // Tracing must not perturb the simulation itself.
        let plain = generate_batch(&cfg, &specs, 4);
        assert_eq!(plain.duration, traced.duration);
        assert_eq!(plain.total_tokens, traced.total_tokens);
    }
}
