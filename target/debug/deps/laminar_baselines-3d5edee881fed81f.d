/root/repo/target/debug/deps/laminar_baselines-3d5edee881fed81f.d: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/partial.rs crates/baselines/src/pipeline.rs crates/baselines/src/verl.rs

/root/repo/target/debug/deps/liblaminar_baselines-3d5edee881fed81f.rlib: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/partial.rs crates/baselines/src/pipeline.rs crates/baselines/src/verl.rs

/root/repo/target/debug/deps/liblaminar_baselines-3d5edee881fed81f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/common.rs crates/baselines/src/partial.rs crates/baselines/src/pipeline.rs crates/baselines/src/verl.rs

crates/baselines/src/lib.rs:
crates/baselines/src/common.rs:
crates/baselines/src/partial.rs:
crates/baselines/src/pipeline.rs:
crates/baselines/src/verl.rs:
