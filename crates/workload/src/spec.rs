//! System-independent trajectory specifications.
//!
//! Fair cross-system comparison (§8) requires every system to replay the
//! *identical* workload. A [`TrajectorySpec`] fully determines one
//! trajectory's resource demand — prompt tokens, decode segments, and
//! environment-call latencies — and is generated deterministically from
//! `(seed, trajectory id)`, so verl, the asynchronous baselines, and Laminar
//! all execute the same trajectories in their own schedules.

use crate::dataset::GroupedBatch;
use crate::env::SandboxModel;
use crate::lengths::{Checkpoint, LengthModel};
use laminar_sim::{Duration, SimRng};

/// One phase of a trajectory's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Auto-regressively decode this many tokens on the rollout GPU.
    Decode {
        /// Token count.
        tokens: u64,
    },
    /// Wait on an external environment call (code sandbox) for this long;
    /// the GPU holds the trajectory's KVCache but runs no decode for it.
    Env {
        /// Call latency.
        latency: Duration,
    },
}

/// The complete, system-independent description of one trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectorySpec {
    /// Globally unique trajectory id.
    pub id: u64,
    /// The prompt this trajectory answers.
    pub prompt_id: u64,
    /// Response index within the prompt's GRPO group.
    pub group_index: usize,
    /// Prompt length, tokens.
    pub prompt_tokens: u64,
    /// Execution phases, in order. Always starts and ends with a decode.
    pub segments: Vec<Segment>,
}

impl TrajectorySpec {
    /// Total tokens decoded across all decode segments.
    pub fn decode_tokens(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Decode { tokens } => *tokens,
                Segment::Env { .. } => 0,
            })
            .sum()
    }

    /// Total environment wait time.
    pub fn env_time(&self) -> Duration {
        self.segments.iter().fold(Duration::ZERO, |acc, s| match s {
            Segment::Env { latency } => acc + *latency,
            Segment::Decode { .. } => acc,
        })
    }

    /// Number of environment calls.
    pub fn env_calls(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Env { .. }))
            .count()
    }

    /// Prompt plus response tokens — the unit the paper's throughput metric
    /// counts.
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens + self.decode_tokens()
    }

    /// Final context length (prompt + all decoded tokens), which bounds the
    /// trajectory's KVCache footprint.
    pub fn final_context(&self) -> u64 {
        self.total_tokens()
    }

    /// Appends the spec's canonical checkpoint encoding: a fixed-order word
    /// stream covering every field, shared by all delta-checkpoint planes
    /// that persist trajectory assignments.
    pub fn encode_words(&self, out: &mut Vec<u64>) {
        out.push(self.id);
        out.push(self.prompt_id);
        out.push(self.group_index as u64);
        out.push(self.prompt_tokens);
        out.push(self.segments.len() as u64);
        for seg in &self.segments {
            match seg {
                Segment::Decode { tokens } => {
                    out.push(0);
                    out.push(*tokens);
                }
                Segment::Env { latency } => {
                    out.push(1);
                    out.push(latency.as_nanos());
                }
            }
        }
    }
}

/// Task family being trained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Single-turn reasoning (math): one decode segment per trajectory.
    SingleTurn,
    /// Multi-turn tool calling: decode/env alternation with at most
    /// `max_calls` environment calls (8 in the paper's ReTool setting).
    MultiTurn {
        /// Maximum environment calls per trajectory.
        max_calls: usize,
    },
}

/// Deterministic workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    /// Root seed; together with a trajectory id it fully determines a spec.
    pub seed: u64,
    /// Task family.
    pub kind: WorkloadKind,
    /// Length model for the emulated checkpoint.
    pub lengths: LengthModel,
    /// Environment latency model (used by multi-turn workloads).
    pub sandbox: SandboxModel,
    /// Spread of per-prompt difficulty: responses to the same prompt share a
    /// log-normal difficulty factor with this sigma, so GRPO groups are
    /// internally correlated (hard prompts are long for all 16 responses).
    pub prompt_difficulty_sigma: f64,
}

impl WorkloadGenerator {
    /// Single-turn math workload for a checkpoint.
    pub fn single_turn(seed: u64, ckpt: Checkpoint) -> Self {
        WorkloadGenerator {
            seed,
            kind: WorkloadKind::SingleTurn,
            lengths: LengthModel::for_checkpoint(ckpt),
            sandbox: SandboxModel::paper_sandbox(),
            prompt_difficulty_sigma: 0.35,
        }
    }

    /// Multi-turn tool-calling workload (7B ReTool setting, ≤8 calls).
    pub fn multi_turn(seed: u64) -> Self {
        WorkloadGenerator {
            seed,
            kind: WorkloadKind::MultiTurn { max_calls: 8 },
            lengths: LengthModel::for_checkpoint(Checkpoint::Tool7B),
            sandbox: SandboxModel::paper_sandbox(),
            prompt_difficulty_sigma: 0.35,
        }
    }

    /// Per-prompt difficulty factor, deterministic in `(seed, prompt_id)`.
    fn difficulty(&self, prompt_id: u64) -> f64 {
        let mut rng = SimRng::derive(self.seed, "prompt-difficulty", prompt_id);
        (self.prompt_difficulty_sigma * rng.standard_normal()).exp()
    }

    /// Generates the spec for trajectory `id` answering `prompt_id` as group
    /// member `group_index`, with the length model evolved by `evolution`
    /// (1.0 = the base checkpoint distribution).
    pub fn trajectory(
        &self,
        id: u64,
        prompt_id: u64,
        group_index: usize,
        evolution: f64,
    ) -> TrajectorySpec {
        let mut rng = SimRng::derive(self.seed, "trajectory", id);
        let lengths = self.lengths.evolved(evolution * self.difficulty(prompt_id));
        let prompt_tokens = lengths.sample_prompt(&mut rng);
        let segments = match self.kind {
            WorkloadKind::SingleTurn => {
                vec![Segment::Decode {
                    tokens: lengths.sample_response(&mut rng),
                }]
            }
            WorkloadKind::MultiTurn { max_calls } => {
                // Call count skews low: most problems resolve in a few tool
                // invocations, hard ones exhaust the cap (§2.1).
                let calls = (1 + rng
                    .below(max_calls.max(1) as u64)
                    .min(rng.below(max_calls.max(1) as u64))) as usize;
                let mut segs = Vec::with_capacity(2 * calls + 1);
                let mut budget = lengths.max_response;
                for _ in 0..calls {
                    let tokens = lengths.sample_response(&mut rng).min(budget.max(1));
                    budget = budget.saturating_sub(tokens);
                    segs.push(Segment::Decode { tokens });
                    segs.push(Segment::Env {
                        latency: self.sandbox.sample(&mut rng),
                    });
                }
                let tokens = lengths.sample_response(&mut rng).min(budget.max(1));
                segs.push(Segment::Decode { tokens });
                segs
            }
        };
        TrajectorySpec {
            id,
            prompt_id,
            group_index,
            prompt_tokens,
            segments,
        }
    }

    /// Generates all trajectories of a grouped batch (e.g. the 512×16
    /// global batch) with the given length evolution factor.
    pub fn batch(&self, batch: &GroupedBatch, evolution: f64) -> Vec<TrajectorySpec> {
        batch
            .assignments()
            .map(|(id, prompt_id, group_index)| {
                self.trajectory(id, prompt_id, group_index, evolution)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_sim::Histogram;

    #[test]
    fn single_turn_has_one_decode_segment() {
        let w = WorkloadGenerator::single_turn(1, Checkpoint::Math7B);
        let t = w.trajectory(0, 0, 0, 1.0);
        assert_eq!(t.segments.len(), 1);
        assert_eq!(t.env_calls(), 0);
        assert!(t.decode_tokens() >= 1);
        assert!(t.prompt_tokens >= 1 && t.prompt_tokens <= 2048);
    }

    #[test]
    fn generation_is_deterministic() {
        let w = WorkloadGenerator::single_turn(5, Checkpoint::Math32B);
        let a = w.trajectory(42, 3, 1, 1.0);
        let b = w.trajectory(42, 3, 1, 1.0);
        assert_eq!(a, b);
        let c = w.trajectory(43, 3, 2, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn multi_turn_alternates_and_respects_cap() {
        let w = WorkloadGenerator::multi_turn(2);
        for id in 0..200 {
            let t = w.trajectory(id, id / 16, (id % 16) as usize, 1.0);
            let calls = t.env_calls();
            assert!((1..=8).contains(&calls), "calls {calls}");
            // Starts and ends with decode; strict alternation.
            assert!(matches!(t.segments.first(), Some(Segment::Decode { .. })));
            assert!(matches!(t.segments.last(), Some(Segment::Decode { .. })));
            for pair in t.segments.windows(2) {
                let alternates = matches!(
                    pair,
                    [Segment::Decode { .. }, Segment::Env { .. }]
                        | [Segment::Env { .. }, Segment::Decode { .. }]
                );
                assert!(alternates);
            }
            assert!(t.decode_tokens() <= 16_384 + 8, "budget exceeded");
        }
    }

    #[test]
    fn group_members_share_difficulty() {
        let w = WorkloadGenerator::single_turn(7, Checkpoint::Math7B);
        // Average within-group length spread must be smaller than the
        // across-prompt spread (difficulty is shared per prompt).
        let mut within = Histogram::new();
        let mut means = Histogram::new();
        for p in 0..200u64 {
            let lens: Vec<f64> = (0..16)
                .map(|g| w.trajectory(p * 16 + g, p, g as usize, 1.0).decode_tokens() as f64)
                .collect();
            let mean = lens.iter().sum::<f64>() / 16.0;
            means.add(mean.ln());
            for l in lens {
                within.add((l.ln() - mean.ln()).abs());
            }
        }
        let across_spread = {
            let mut m = means.clone();
            m.percentile(90.0) - m.percentile(10.0)
        };
        assert!(across_spread > 0.3, "prompts must differ in difficulty");
    }

    #[test]
    fn evolution_scales_lengths() {
        let w = WorkloadGenerator::single_turn(9, Checkpoint::Math7B);
        let total = |e: f64| {
            (0..500)
                .map(|i| w.trajectory(i, i / 16, 0, e).decode_tokens())
                .sum::<u64>()
        };
        let base = total(1.0);
        let grown = total(1.8);
        assert!(
            grown as f64 > base as f64 * 1.4,
            "base {base} grown {grown}"
        );
    }

    #[test]
    fn total_tokens_adds_prompt() {
        let w = WorkloadGenerator::single_turn(3, Checkpoint::Math7B);
        let t = w.trajectory(1, 0, 1, 1.0);
        assert_eq!(t.total_tokens(), t.prompt_tokens + t.decode_tokens());
        assert_eq!(t.final_context(), t.total_tokens());
    }
}
