//! Response-length models per model checkpoint (Figure 2 left, Figure 17).
//!
//! The paper trains from intermediate RL checkpoints of Qwen2.5-Math-7B,
//! Qwen2.5-32B and Qwen2.5-Math-72B on DAPO-Math-17k with a 2K-token input
//! cap and 16K-token output cap, and reports that trajectory lengths are
//! highly heterogeneous — the 99th percentile reaching ~10× the median —
//! and that lengths *evolve* over training (§2.3). The models here encode
//! those shapes.

use crate::dist::Dist;

/// Which model checkpoint's output distribution to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Checkpoint {
    /// Qwen2.5-Math-7B mid-RL checkpoint (math reasoning).
    Math7B,
    /// Qwen2.5-32B mid-RL checkpoint (math reasoning).
    Math32B,
    /// Qwen2.5-Math-72B mid-RL checkpoint (math reasoning).
    Math72B,
    /// 7B ReTool-style checkpoint (multi-turn tool calling).
    Tool7B,
}

/// Trajectory length model: prompt and response token distributions.
#[derive(Debug, Clone)]
pub struct LengthModel {
    /// Prompt (input) length distribution, tokens.
    pub prompt: Dist,
    /// Response (output) length distribution, tokens.
    pub response: Dist,
    /// Hard cap on output tokens (16K in the paper's setting).
    pub max_response: u64,
    /// Hard cap on input tokens (2K in the paper's setting).
    pub max_prompt: u64,
}

impl LengthModel {
    /// Length model for a checkpoint.
    ///
    /// Larger models at these checkpoints produce longer reasoning chains;
    /// all share the p99 ≈ 10× median skew the paper reports. Responses are
    /// clamped to the 16K cap, which produces the truncation spike visible
    /// in Figure 17.
    pub fn for_checkpoint(ckpt: Checkpoint) -> Self {
        let (median, skew) = match ckpt {
            Checkpoint::Math7B => (2800.0, 10.0),
            Checkpoint::Math32B => (3600.0, 9.0),
            Checkpoint::Math72B => (4200.0, 8.0),
            // Per-turn responses are shorter in tool-calling; the multi-turn
            // structure supplies the rest of the length.
            Checkpoint::Tool7B => (900.0, 8.0),
        };
        LengthModel {
            prompt: Dist::Uniform {
                lo: 256.0,
                hi: 2048.0,
            },
            response: Dist::lognormal_median_p99(median, skew).clamped(16.0, 16_384.0),
            max_response: 16_384,
            max_prompt: 2_048,
        }
    }

    /// Samples a prompt length in tokens.
    pub fn sample_prompt(&self, rng: &mut laminar_sim::SimRng) -> u64 {
        (self.prompt.sample(rng).round() as u64).clamp(1, self.max_prompt)
    }

    /// Samples a response length in tokens.
    pub fn sample_response(&self, rng: &mut laminar_sim::SimRng) -> u64 {
        (self.response.sample(rng).round() as u64).clamp(1, self.max_response)
    }

    /// Rescales the response distribution by `factor`, modelling length
    /// evolution across training (§2.3: lengths can increase, decrease, or
    /// fluctuate as the model learns).
    pub fn evolved(&self, factor: f64) -> Self {
        let mut out = self.clone();
        out.response = self
            .response
            .clone()
            .scaled(factor.max(0.01))
            .clamped(16.0, self.max_response as f64);
        out
    }
}

/// Length-evolution schedule: multiplicative factor on the median response
/// length as a function of training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthEvolution {
    /// Lengths stay put.
    Static,
    /// Lengths grow as the model learns to reason longer (DeepSeek-R1-style),
    /// saturating at `ceiling`.
    Growing {
        /// Growth per iteration (e.g. 0.01 = +1%/iteration).
        rate: f64,
        /// Maximum multiplicative factor.
        ceiling: f64,
    },
    /// Lengths shrink as the model becomes more token-efficient.
    Shrinking {
        /// Decay per iteration.
        rate: f64,
        /// Minimum multiplicative factor.
        floor: f64,
    },
}

impl LengthEvolution {
    /// Multiplicative factor at `iteration`.
    pub fn factor(&self, iteration: u64) -> f64 {
        match *self {
            LengthEvolution::Static => 1.0,
            LengthEvolution::Growing { rate, ceiling } => {
                ((1.0 + rate).powi(iteration as i32)).min(ceiling)
            }
            LengthEvolution::Shrinking { rate, floor } => {
                ((1.0 - rate).powi(iteration as i32)).max(floor)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_sim::{Histogram, SimRng};

    #[test]
    fn math7b_has_tenfold_skew() {
        let m = LengthModel::for_checkpoint(Checkpoint::Math7B);
        let mut rng = SimRng::new(1);
        let mut h = Histogram::new();
        for _ in 0..40_000 {
            h.add(m.sample_response(&mut rng) as f64);
        }
        let med = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        // p99/median ≈ 10, moderated slightly by the 16K cap.
        assert!(p99 / med > 5.0, "skew too small: {}", p99 / med);
        assert!(h.max() <= 16_384.0);
    }

    #[test]
    fn prompts_respect_cap() {
        let m = LengthModel::for_checkpoint(Checkpoint::Math32B);
        let mut rng = SimRng::new(2);
        for _ in 0..2000 {
            let p = m.sample_prompt(&mut rng);
            assert!((1..=2048).contains(&p));
        }
    }

    #[test]
    fn checkpoints_order_by_median() {
        let mut rng = SimRng::new(3);
        let mut med = |c: Checkpoint| {
            let m = LengthModel::for_checkpoint(c);
            let mut h = Histogram::new();
            for _ in 0..20_000 {
                h.add(m.sample_response(&mut rng) as f64);
            }
            h.percentile(50.0)
        };
        let m7 = med(Checkpoint::Math7B);
        let m32 = med(Checkpoint::Math32B);
        let m72 = med(Checkpoint::Math72B);
        assert!(m7 < m32 && m32 < m72, "{m7} {m32} {m72}");
    }

    #[test]
    fn evolution_schedules() {
        let g = LengthEvolution::Growing {
            rate: 0.05,
            ceiling: 2.0,
        };
        assert_eq!(g.factor(0), 1.0);
        assert!(g.factor(10) > 1.5);
        assert_eq!(g.factor(1000), 2.0);
        let s = LengthEvolution::Shrinking {
            rate: 0.05,
            floor: 0.5,
        };
        assert!(s.factor(5) < 1.0);
        assert_eq!(s.factor(1000), 0.5);
        assert_eq!(LengthEvolution::Static.factor(99), 1.0);
    }

    #[test]
    fn evolved_model_scales_median() {
        let m = LengthModel::for_checkpoint(Checkpoint::Math7B);
        let double = m.evolved(2.0);
        let mut rng = SimRng::new(4);
        let mut base = Histogram::new();
        let mut grown = Histogram::new();
        for _ in 0..20_000 {
            base.add(m.sample_response(&mut rng) as f64);
            grown.add(double.sample_response(&mut rng) as f64);
        }
        let ratio = grown.percentile(50.0) / base.percentile(50.0);
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
    }
}
