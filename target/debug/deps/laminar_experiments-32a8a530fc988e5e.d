/root/repo/target/debug/deps/laminar_experiments-32a8a530fc988e5e.d: crates/bench/src/bin/laminar_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liblaminar_experiments-32a8a530fc988e5e.rmeta: crates/bench/src/bin/laminar_experiments.rs Cargo.toml

crates/bench/src/bin/laminar_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
