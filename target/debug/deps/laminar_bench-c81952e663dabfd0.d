/root/repo/target/debug/deps/laminar_bench-c81952e663dabfd0.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/async_figs.rs crates/bench/src/experiments/convergence_fig.rs crates/bench/src/experiments/perf_figs.rs crates/bench/src/experiments/tables.rs crates/bench/src/experiments/throughput.rs crates/bench/src/experiments/workload_figs.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/liblaminar_bench-c81952e663dabfd0.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/async_figs.rs crates/bench/src/experiments/convergence_fig.rs crates/bench/src/experiments/perf_figs.rs crates/bench/src/experiments/tables.rs crates/bench/src/experiments/throughput.rs crates/bench/src/experiments/workload_figs.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/async_figs.rs:
crates/bench/src/experiments/convergence_fig.rs:
crates/bench/src/experiments/perf_figs.rs:
crates/bench/src/experiments/tables.rs:
crates/bench/src/experiments/throughput.rs:
crates/bench/src/experiments/workload_figs.rs:
crates/bench/src/table.rs:
