//! Deterministic checkpoint/restore: the [`Recoverable`] trait and its
//! equivalence checker.
//!
//! A recoverable system can run with snapshots taken at a configurable
//! virtual-time cadence, and any snapshot can be resumed to completion.
//! Because every system in the workspace is a deterministic function of its
//! configuration, a resumed run is *provably byte-identical* to the
//! uninterrupted one: same report text, same trace, bit for bit. Systems
//! buffer their trace spans inside the run state (rather than streaming
//! them to the sink mid-run), so a resumed run re-emits the complete trace
//! from `t = 0` — strictly stronger than matching only the suffix, and what
//! [`check_resume_equivalence`] verifies.
//!
//! Snapshot *contents* are whole-state: the rollout engines (heaps and
//! resident trajectories included), experience/partial buffers, actor and
//! relay weight versions, the driver's clock, and the pending event queue
//! all ride along via `Clone`. The scheduler clone copies its queue storage
//! verbatim, so event pop order — including FIFO tie-breaks — survives the
//! round trip.

use crate::config::SystemConfig;
use crate::report::{RlSystem, RunReport};
use crate::trace::{RecordingTrace, TraceSink};
use laminar_sim::{Duration, Time};

/// One snapshot captured at a checkpoint cadence point.
#[derive(Debug, Clone)]
pub struct RunSnapshot<S> {
    /// The cadence instant this snapshot represents (a multiple of the
    /// checkpoint interval; the run's clock may sit slightly earlier, at
    /// the last event at or before this instant).
    pub at: Time,
    /// 0-based index of the cadence point.
    pub index: usize,
    /// The full run state.
    pub state: S,
}

/// An [`RlSystem`] supporting deterministic checkpoint/restore.
pub trait Recoverable: RlSystem {
    /// The full mid-run state. Cloneable so one run can yield many
    /// independent resumable snapshots.
    type Snapshot: Clone;

    /// Runs to completion, capturing a snapshot at every multiple of
    /// `every` (virtual time) crossed before the run finishes. Must produce
    /// exactly the report and trace of [`RlSystem::run_traced`] — taking
    /// snapshots never perturbs the run.
    fn run_checkpointed(
        &self,
        cfg: &SystemConfig,
        every: Duration,
        trace: &mut dyn TraceSink,
    ) -> (RunReport, Vec<RunSnapshot<Self::Snapshot>>);

    /// Resumes a snapshot to completion. The report and the *complete*
    /// trace (systems buffer spans in-state, so the resumed run emits the
    /// full history) must be byte-identical to the uninterrupted run's.
    fn resume(&self, snapshot: Self::Snapshot, trace: &mut dyn TraceSink) -> RunReport;

    /// A cheap deterministic digest of the snapshot state. Checkpoint
    /// descriptor files persist this so `--resume-from` can verify that a
    /// deterministic replay reconstructed the same state before resuming.
    fn fingerprint(snapshot: &Self::Snapshot) -> u64;
}

/// FNV-1a over a word stream: the fingerprint fold every implementation
/// uses (declared here so digests stay consistent across crates).
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Outcome of one checkpoint/restore equivalence check.
#[derive(Debug, Clone)]
pub struct ResumeEquivalence {
    /// The checkpoint cadence exercised.
    pub cadence: Duration,
    /// Snapshots the checkpointed run captured.
    pub snapshots: usize,
    /// The checkpointed run itself matched the uninterrupted run.
    pub checkpointed_identical: bool,
    /// How many resumed snapshots reproduced the uninterrupted run.
    pub resumes_identical: usize,
    /// Human-readable description of the first divergence, if any.
    pub first_divergence: Option<String>,
}

impl ResumeEquivalence {
    /// True when the checkpointed run and every resumed snapshot matched
    /// the uninterrupted run byte for byte.
    pub fn identical(&self) -> bool {
        self.checkpointed_identical && self.resumes_identical == self.snapshots
    }
}

/// Runs `sys` three ways — uninterrupted, checkpointed at `every`, and
/// resumed from every captured snapshot — and verifies that report text and
/// trace JSONL are byte-identical across all of them.
pub fn check_resume_equivalence<S: Recoverable>(
    sys: &S,
    cfg: &SystemConfig,
    every: Duration,
) -> ResumeEquivalence {
    let mut base_trace = RecordingTrace::new();
    let base_report = sys.run_traced(cfg, &mut base_trace);
    let base_text = format!("{base_report:?}");
    let base_jsonl = base_trace.to_jsonl();

    let mut ck_trace = RecordingTrace::new();
    let (ck_report, snapshots) = sys.run_checkpointed(cfg, every, &mut ck_trace);
    let mut first_divergence = None;
    let checkpointed_identical =
        format!("{ck_report:?}") == base_text && ck_trace.to_jsonl() == base_jsonl;
    if !checkpointed_identical {
        first_divergence = Some("checkpointed run diverged from uninterrupted run".to_string());
    }

    let total = snapshots.len();
    let mut resumes_identical = 0;
    for snap in snapshots {
        let (at, index) = (snap.at, snap.index);
        let mut trace = RecordingTrace::new();
        let report = sys.resume(snap.state, &mut trace);
        if format!("{report:?}") == base_text && trace.to_jsonl() == base_jsonl {
            resumes_identical += 1;
        } else if first_divergence.is_none() {
            first_divergence = Some(format!(
                "resume from snapshot {index} (t = {:.1}s) diverged",
                at.as_secs_f64()
            ));
        }
    }
    ResumeEquivalence {
        cadence: every,
        snapshots: total,
        checkpointed_identical,
        resumes_identical,
        first_divergence,
    }
}
